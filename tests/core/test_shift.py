"""Tests for Algorithm 2 (ComputeShift) — exact semantics and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shift import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ShiftComputer,
    trace_shift,
)
from repro.errors import ConfigurationError
from repro.obs.tracer import Tracer


class TestAlgorithmSemantics:
    def test_paper_defaults(self):
        shift = ShiftComputer()
        assert shift.delta == DEFAULT_DELTA == 0.05
        assert shift.epsilon == DEFAULT_EPSILON == 0.01

    def test_initial_watermarks(self):
        shift = ShiftComputer()
        assert shift.p_lo == 0.0
        assert shift.p_hi == 1.0

    def test_dead_band_returns_zero(self):
        """Line 2: |L_D - L_A| < delta * L_D -> no shift."""
        shift = ShiftComputer(delta=0.05)
        assert shift.compute(0.5, 100.0, 103.0) == 0.0
        # Watermarks untouched inside the dead band.
        assert shift.p_lo == 0.0 and shift.p_hi == 1.0

    def test_default_faster_raises_lower_watermark(self):
        """Line 4, L_D < L_A branch: p_lo <- p."""
        shift = ShiftComputer()
        dp = shift.compute(0.4, 100.0, 200.0)
        assert shift.p_lo == 0.4
        assert shift.p_hi == 1.0
        # Shift toward midpoint (0.4+1)/2 = 0.7.
        assert dp == pytest.approx(0.3)

    def test_default_slower_lowers_upper_watermark(self):
        """Line 4, L_D > L_A branch: p_hi <- p."""
        shift = ShiftComputer()
        dp = shift.compute(0.8, 300.0, 150.0)
        assert shift.p_hi == 0.8
        assert shift.p_lo == 0.0
        assert dp == pytest.approx(abs(0.4 - 0.8))

    def test_reset_high_watermark_when_collapsed(self):
        """Lines 5-6: collapsed bracket + default still faster -> p_hi=1."""
        shift = ShiftComputer(epsilon=0.05)
        shift.p_lo, shift.p_hi = 0.60, 0.62
        shift.compute(0.61, 100.0, 200.0)
        assert shift.p_hi == 1.0
        assert shift.resets == 1

    def test_reset_low_watermark_when_collapsed(self):
        shift = ShiftComputer(epsilon=0.05)
        shift.p_lo, shift.p_hi = 0.60, 0.62
        shift.compute(0.61, 300.0, 100.0)
        assert shift.p_lo == 0.0
        assert shift.resets == 1

    def test_target_is_midpoint(self):
        shift = ShiftComputer()
        shift.p_lo, shift.p_hi = 0.2, 0.6
        assert shift.target_p() == pytest.approx(0.4)

    def test_manual_reset(self):
        shift = ShiftComputer()
        shift.compute(0.5, 100.0, 200.0)
        shift.reset()
        assert shift.p_lo == 0.0 and shift.p_hi == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ShiftComputer(delta=0.0)
        with pytest.raises(ConfigurationError):
            ShiftComputer(epsilon=1.0)

    def test_rejects_bad_inputs(self):
        shift = ShiftComputer()
        with pytest.raises(ConfigurationError):
            shift.compute(1.5, 100.0, 200.0)
        with pytest.raises(ConfigurationError):
            shift.compute(0.5, -1.0, 200.0)


class TestShiftTracing:
    def test_reset_side_recorded(self):
        shift = ShiftComputer(epsilon=0.05)
        shift.p_lo, shift.p_hi = 0.60, 0.62
        shift.compute(0.61, 100.0, 200.0)
        assert shift.last_reset_side == "hi"
        shift.compute(0.61, 103.0, 100.0)  # dead band: no reset
        assert shift.last_reset_side is None

    def test_trace_shift_emits_init_once(self):
        tracer = Tracer()
        shift = ShiftComputer()
        for __ in range(3):
            dp = shift.compute(0.5, 100.0, 200.0)
            trace_shift(tracer, shift, 0.5, dp, 100.0, 200.0)
        resets = tracer.events("watermark_reset")
        assert len(resets) == 1
        assert resets[0]["side"] == "init"
        assert len(tracer.events("compute_shift")) == 3

    def test_trace_shift_emits_dynamic_reset(self):
        tracer = Tracer()
        shift = ShiftComputer(epsilon=0.05)
        shift.init_traced = True  # skip the init announcement
        shift.p_lo, shift.p_hi = 0.60, 0.62
        dp = shift.compute(0.61, 300.0, 100.0)
        trace_shift(tracer, shift, 0.61, dp, 300.0, 100.0)
        (reset,) = tracer.events("watermark_reset")
        assert reset["side"] == "lo"
        assert reset["resets"] == 1
        (event,) = tracer.events("compute_shift")
        assert event["p_lo"] == 0.0
        assert event["dp"] == pytest.approx(dp)

    def test_manual_reset_reannounces_init(self):
        tracer = Tracer()
        shift = ShiftComputer()
        dp = shift.compute(0.5, 100.0, 200.0)
        trace_shift(tracer, shift, 0.5, dp, 100.0, 200.0)
        shift.reset()
        dp = shift.compute(0.5, 100.0, 200.0)
        trace_shift(tracer, shift, 0.5, dp, 100.0, 200.0)
        sides = [e["side"] for e in tracer.events("watermark_reset")]
        assert sides == ["init", "init"]


def converge(shift: ShiftComputer, p_star: float, p0: float,
             quanta: int = 100) -> float:
    """Drive the computer against a toy latency model crossing at p_star."""
    p = p0
    for __ in range(quanta):
        l_d = 150.0 + 300.0 * (p - p_star)
        l_a = 150.0 - 60.0 * (p - p_star)
        dp = shift.compute(p, max(l_d, 1.0), max(l_a, 1.0))
        if dp > 0:
            direction = 1.0 if l_d < l_a else -1.0
            p = float(np.clip(p + direction * dp, 0.0, 1.0))
    return p


class TestConvergence:
    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_converges_to_equilibrium_from_anywhere(self, p_star, p0):
        """Figure 4(a): static workloads converge to p*."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        p = converge(shift, p_star, p0)
        assert p == pytest.approx(p_star, abs=0.08)

    def test_bracket_contains_p_throughout(self):
        """Invariant: p_lo <= p <= p_hi at every quantum (static case)."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        p, p_star = 0.95, 0.4
        for __ in range(60):
            l_d = 150.0 + 300.0 * (p - p_star)
            l_a = 150.0 - 60.0 * (p - p_star)
            dp = shift.compute(p, max(l_d, 1.0), max(l_a, 1.0))
            assert shift.p_lo - 1e-9 <= p <= shift.p_hi + 1e-9
            if dp > 0:
                direction = 1.0 if l_d < l_a else -1.0
                p = float(np.clip(p + direction * dp, 0.0, 1.0))

    def test_recovers_from_p_jump(self):
        """Figure 4(b): a jump in p is absorbed without a reset."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        p = converge(shift, 0.5, 0.9, quanta=40)
        p = converge(shift, 0.5, 0.05, quanta=60)  # p jumped to 0.05
        assert p == pytest.approx(0.5, abs=0.08)

    def test_recovers_from_p_star_jump_via_reset(self):
        """Figure 4(c): a jump in p* triggers a watermark reset."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        p = converge(shift, 0.3, 0.9, quanta=60)
        assert p == pytest.approx(0.3, abs=0.08)
        resets_before = shift.resets
        p = converge(shift, 0.8, p, quanta=120)
        assert shift.resets > resets_before
        assert p == pytest.approx(0.8, abs=0.08)

    def test_converges_to_boundary_when_no_interior_equilibrium(self):
        """If L_D < L_A even at p=1, Colloid should pack everything
        (the existing-systems behaviour, §3.2)."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        p = 0.3
        for __ in range(80):
            dp = shift.compute(p, 100.0, 250.0)  # default always faster
            p = float(np.clip(p + dp, 0.0, 1.0))
        assert p > 0.97

    def test_disabled_resets_miss_moved_equilibrium(self):
        """Ablation flag: without resets, a p* jump outside the bracket
        is never recovered (Figure 4c's failure mode)."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01,
                              enable_resets=False)
        p = converge(shift, 0.3, 0.9, quanta=60)
        p = converge(shift, 0.8, p, quanta=200)
        assert abs(p - 0.8) > 0.2
        assert shift.resets == 0

    def test_page_hotter_than_every_dp_is_unmovable(self):
        """Documented edge case (EXPERIMENTS.md): Algorithm 2's shift is
        |midpoint - p| <= (1 - p)/2 in promotion mode, so a single page
        carrying more probability than that can never be selected — the
        system stalls below the balance point. Realistic workloads keep
        per-page probabilities far below this threshold."""
        shift = ShiftComputer(delta=0.02, epsilon=0.01)
        giant_page = 0.55   # one page holding 55% of all accesses
        p = 0.2             # giant page currently in the alternate tier
        for __ in range(200):
            l_d, l_a = 100.0, 300.0  # promotion strongly indicated
            dp = shift.compute(p, l_d, l_a)
            # The finder can only move the giant page if dp allows it.
            if dp >= giant_page:
                p = min(1.0, p + giant_page)
            # (Other pages are colder than anything in the default tier,
            # so no other move changes p.)
        assert p == pytest.approx(0.2)  # stuck: dp never reaches 0.55

    def test_epsilon_controls_reset_sensitivity(self):
        """Larger epsilon detects p* changes faster (paper trade-off)."""
        slow = ShiftComputer(delta=0.02, epsilon=0.005)
        fast = ShiftComputer(delta=0.02, epsilon=0.1)
        for shift in (slow, fast):
            converge(shift, 0.3, 0.9, quanta=50)
        quanta_to_reset = {}
        for name, shift in (("slow", slow), ("fast", fast)):
            p = 0.3
            count = 0
            while shift.resets == 0 and count < 200:
                l_d = 150.0 + 300.0 * (p - 0.8)
                l_a = 150.0 - 60.0 * (p - 0.8)
                dp = shift.compute(p, max(l_d, 1.0), max(l_a, 1.0))
                if dp > 0:
                    direction = 1.0 if l_d < l_a else -1.0
                    p = float(np.clip(p + direction * dp, 0.0, 1.0))
                count += 1
            quanta_to_reset[name] = count
        assert quanta_to_reset["fast"] <= quanta_to_reset["slow"]


class TestFindEquilibriumP:
    def test_p_star_balances_latencies(self):
        from repro.core.shift import find_equilibrium_p
        from repro.memhw.antagonist import antagonist_core_group
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver
        from repro.memhw.topology import paper_testbed

        machine = paper_testbed()
        solver = EquilibriumSolver(machine.tiers)
        app = CoreGroup("app", 15, 7.0, randomness=1.0,
                        read_fraction=0.5)
        ant = antagonist_core_group(1, machine.antagonist)
        p_star = find_equilibrium_p(solver, app, pinned=[(ant, 0)],
                                    tolerance=1e-5)
        assert 0.0 < p_star < 1.0
        eq = solver.solve(app, [p_star, 1.0 - p_star],
                          pinned=[(ant, 0)])
        gap = abs(eq.latencies_ns[0] - eq.latencies_ns[1])
        assert gap < 0.01 * eq.latencies_ns[1]

    def test_heavy_contention_degenerates_to_zero(self):
        from repro.core.shift import find_equilibrium_p
        from repro.memhw.antagonist import antagonist_core_group
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver
        from repro.memhw.topology import paper_testbed

        machine = paper_testbed()
        solver = EquilibriumSolver(machine.tiers)
        app = CoreGroup("app", 15, 7.0, randomness=1.0,
                        read_fraction=0.5)
        ant = antagonist_core_group(3, machine.antagonist)
        # The antagonist alone makes the default tier slower than the
        # alternate at every split: all traffic belongs off-tier.
        assert find_equilibrium_p(solver, app,
                                  pinned=[(ant, 0)]) == 0.0

    def test_idle_app_degenerates_to_one(self):
        from repro.core.shift import find_equilibrium_p
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver
        from repro.memhw.topology import paper_testbed

        solver = EquilibriumSolver(paper_testbed().tiers)
        idle = CoreGroup("idle", 0, 7.0)
        # With no traffic at all the default tier (65 ns) is faster at
        # every split, so the balance point is all-default.
        assert find_equilibrium_p(solver, idle) == 1.0

    def test_two_tier_only(self):
        import dataclasses

        from repro.core.shift import find_equilibrium_p
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver
        from repro.memhw.topology import paper_testbed

        base = paper_testbed()
        third = dataclasses.replace(base.tiers[1], name="third")
        solver = EquilibriumSolver(base.tiers + (third,))
        with pytest.raises(ConfigurationError):
            find_equilibrium_p(solver, CoreGroup("app", 15, 7.0))
