"""Tests for the dynamic migration limit and page finders."""

import numpy as np
import pytest

from repro.core.finder import BinnedPageFinder, HotListPageFinder
from repro.core.limit import dynamic_migration_limit
from repro.errors import ConfigurationError
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState


class TestDynamicMigrationLimit:
    def test_formula(self):
        """min(dp * (R_D+R_A), M) in bytes per quantum."""
        limit = dynamic_migration_limit(
            dp=0.1, total_request_rate=2.0, quantum_ns=1e7,
            static_limit_bytes=10**9,
        )
        assert limit == int(0.1 * 2.0 * 64 * 1e7)

    def test_static_limit_caps(self):
        limit = dynamic_migration_limit(
            dp=0.5, total_request_rate=10.0, quantum_ns=1e7,
            static_limit_bytes=1000,
        )
        assert limit == 1000

    def test_zero_dp_zero_budget(self):
        assert dynamic_migration_limit(0.0, 2.0, 1e7, 10**9) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(-0.1, 2.0, 1e7, 100)
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(0.1, 2.0, 0.0, 100)
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(0.1, 2.0, 1e7, 0)


def make_placement(tiers):
    """tiers: list of tier index per page (100 B pages)."""
    pages = PageArray.uniform(len(tiers), 100)
    placement = PlacementState(pages, [100 * len(tiers)] * 2)
    for t in (0, 1):
        placement.move(np.nonzero(np.array(tiers) == t)[0], t)
    return placement


class TestBinnedPageFinder:
    def test_bin_assignment(self):
        finder = BinnedPageFinder(cooling_threshold=10.0, n_bins=5)
        counts = np.array([0.0, 1.9, 2.0, 9.9, 100.0])
        assert list(finder.bin_of(counts)) == [0, 0, 1, 4, 4]

    def test_finds_hottest_within_dp(self):
        finder = BinnedPageFinder(cooling_threshold=10.0, n_bins=5)
        counts = np.array([9.0, 5.0, 1.0, 9.0])
        placement = make_placement([1, 1, 1, 0])
        chosen = finder.find(counts, placement, src_tier=1, dp=0.45,
                             byte_budget=10_000)
        # probs: 9/24, 5/24, 1/24 for tier-1 pages; hottest bin first.
        assert 0 in chosen
        total_prob = counts[chosen].sum() / counts.sum()
        assert total_prob <= 0.45 + 1e-9

    def test_respects_byte_budget(self):
        finder = BinnedPageFinder(cooling_threshold=10.0)
        counts = np.array([9.0, 9.0, 9.0, 9.0])
        placement = make_placement([1, 1, 1, 1])
        chosen = finder.find(counts, placement, src_tier=1, dp=1.0,
                             byte_budget=250)
        assert len(chosen) == 2

    def test_only_source_tier_pages(self):
        finder = BinnedPageFinder(cooling_threshold=10.0)
        counts = np.array([9.0, 9.0])
        placement = make_placement([0, 1])
        chosen = finder.find(counts, placement, src_tier=1, dp=1.0,
                             byte_budget=10_000)
        assert list(chosen) == [1]

    def test_unsampled_pages_are_not_candidates(self):
        """Cold-bin pages carry no measurable probability; migrating
        them cannot realize a shift, so the finder skips them."""
        finder = BinnedPageFinder(cooling_threshold=10.0)
        counts = np.zeros(4)
        placement = make_placement([1, 1, 1, 1])
        chosen = finder.find(counts, placement, src_tier=1, dp=0.6,
                             byte_budget=10_000)
        assert chosen.size == 0

    def test_sampled_cold_bin_pages_are_last_resort(self):
        """Bin-0 pages with samples are eligible, after hotter bins."""
        finder = BinnedPageFinder(cooling_threshold=10.0, n_bins=5)
        counts = np.array([9.0, 0.5, 0.0, 0.5])  # page 2 never sampled
        placement = make_placement([1, 1, 1, 1])
        chosen = finder.find(counts, placement, src_tier=1, dp=1.0,
                             byte_budget=10_000)
        assert list(chosen)[0] == 0       # hottest bin first
        assert 2 not in chosen            # unsampled excluded
        assert {1, 3} <= set(chosen.tolist())

    def test_explicit_probability_estimates_used(self):
        """Colloid passes decayed-cumulative estimates; binning still
        follows the cooled counts."""
        finder = BinnedPageFinder(cooling_threshold=10.0, n_bins=5)
        counts = np.array([9.0, 1.0, 1.0, 1.0])
        probs = np.array([0.1, 0.6, 0.2, 0.1])
        placement = make_placement([1, 1, 1, 1])
        chosen = finder.find(counts, placement, src_tier=1, dp=0.15,
                             byte_budget=10_000, probs=probs)
        # dp excludes pages 1 and 2; page 0 (bin 4) fits.
        assert 0 in chosen
        assert 1 not in chosen

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            BinnedPageFinder(cooling_threshold=0.0)
        with pytest.raises(ConfigurationError):
            BinnedPageFinder(cooling_threshold=10.0, n_bins=0)


class TestHotListPageFinder:
    def test_scans_hot_list_first(self):
        finder = HotListPageFinder()
        counts = np.array([10.0, 8.0, 1.0, 0.5])
        placement = make_placement([1, 1, 1, 1])
        chosen = finder.find(counts, hot_threshold=5.0, placement=placement,
                             src_tier=1, dp=0.6, byte_budget=10_000)
        assert set([0, 1]) & set(chosen.tolist())
        assert counts[chosen].sum() / counts.sum() <= 0.6 + 1e-9

    def test_falls_through_to_cold_pages_when_hot_list_thin(self):
        finder = HotListPageFinder()
        counts = np.array([10.0, 1.0, 1.0, 1.0])
        placement = make_placement([0, 1, 1, 1])
        # Source tier 1 has only cold pages (counts 1.0 < threshold).
        chosen = finder.find(counts, hot_threshold=5.0, placement=placement,
                             src_tier=1, dp=0.2, byte_budget=10_000)
        assert len(chosen) >= 1
        assert all(placement.pages.tier[c] == 1 for c in chosen)

    def test_budget_zero_selects_nothing(self):
        finder = HotListPageFinder()
        counts = np.array([10.0, 8.0])
        placement = make_placement([1, 1])
        chosen = finder.find(counts, 5.0, placement, 1, dp=0.0,
                             byte_budget=10_000)
        assert chosen.size == 0
