"""End-to-end tests of the three Colloid integrations.

These assert the paper's headline behaviours on the full simulation
stack: parity at 0x contention, large gains at 3x, and the mechanism —
placement adapted until tier latencies balance (or the boundary is hit).
"""

import pytest

from repro.core.integrate import (
    HememColloidSystem,
    MemtisColloidSystem,
    TppColloidSystem,
)
from repro.errors import ConfigurationError
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE

PAIRS = [
    (HememSystem, HememColloidSystem, 8.0),
    (MemtisSystem, MemtisColloidSystem, 12.0),
    (TppSystem, TppColloidSystem, 25.0),
]


def run(system, machine, contention, duration, seed=5):
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    loop = SimulationLoop(machine=machine, workload=workload,
                          system=system, contention=contention, seed=seed)
    return loop.run(duration_s=duration)


@pytest.mark.parametrize("base_cls,colloid_cls,duration", PAIRS)
class TestParityAtZeroContention:
    def test_matches_baseline_at_0x(self, base_cls, colloid_cls, duration,
                                    small_machine):
        base = run(base_cls(), small_machine, 0, duration)
        colloid = run(colloid_cls(), small_machine, 0, duration)
        t_base = base.throughput[-50:].mean()
        t_colloid = colloid.throughput[-50:].mean()
        assert t_colloid == pytest.approx(t_base, rel=0.10)


@pytest.mark.parametrize("base_cls,colloid_cls,duration", PAIRS)
class TestGainsUnderContention:
    def test_large_gain_at_3x(self, base_cls, colloid_cls, duration,
                              small_machine):
        """The paper's headline: 1.2-2.4x improvement at 3x intensity."""
        base = run(base_cls(), small_machine, 3, duration)
        colloid = run(colloid_cls(), small_machine, 3, duration)
        gain = (colloid.throughput[-50:].mean()
                / base.throughput[-50:].mean())
        assert gain > 1.6

    def test_colloid_offloads_hot_set(self, base_cls, colloid_cls,
                                      duration, small_machine):
        """At 3x the hot set belongs in the alternate tier (Figure 6a)."""
        colloid = run(colloid_cls(), small_machine, 3, duration)
        assert colloid.p_true[-50:].mean() < 0.3

    def test_latency_gap_narrows(self, base_cls, colloid_cls, duration,
                                 small_machine):
        """Figure 6(b): Colloid shrinks the L_D/L_A gap vs the baseline."""
        base = run(base_cls(), small_machine, 3, duration)
        colloid = run(colloid_cls(), small_machine, 3, duration)
        ratio = lambda m: (m.latencies_ns[-50:, 0].mean()
                           / m.latencies_ns[-50:, 1].mean())
        assert ratio(colloid) < ratio(base)


class TestModerateContention:
    def test_hemem_colloid_balances_at_1x(self, small_machine):
        """At 1x the equilibrium is interior: latencies should be close
        to balanced (within the delta dead band plus measurement slop)."""
        colloid = run(HememColloidSystem(), small_machine, 1, 10.0)
        tail = colloid.latencies_ns[-100:]
        ratio = tail[:, 0].mean() / tail[:, 1].mean()
        assert 0.75 < ratio < 1.30

    def test_hemem_colloid_beats_baseline_at_1x(self, small_machine):
        base = run(HememSystem(), small_machine, 1, 8.0)
        colloid = run(HememColloidSystem(), small_machine, 1, 10.0)
        gain = (colloid.throughput[-50:].mean()
                / base.throughput[-50:].mean())
        assert gain > 1.05


class TestConfiguration:
    def test_controller_requires_configuration(self):
        system = HememColloidSystem()
        with pytest.raises(ConfigurationError):
            system.controller

    def test_custom_delta_epsilon_forwarded(self):
        system = HememColloidSystem(delta=0.1, epsilon=0.02)
        from repro.memhw.topology import paper_testbed
        from repro.pages.pagestate import PageArray
        from repro.pages.placement import PlacementState

        pages = PageArray.uniform(4, 100)
        system.attach(PlacementState(pages, [400, 400]))
        system.on_configure(paper_testbed(), 10**6, 1e7)
        assert system.controller.shift.delta == 0.1
        assert system.controller.shift.epsilon == 0.02
