"""Property tests for Algorithm 2's watermark bracket (hypothesis).

The bracket invariants the runtime checker enforces must hold for *any*
measurement sequence, not just the trajectories the simulator happens to
produce — hypothesis drives the computer with arbitrary (p, L_D, L_A)
streams and asserts them after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shift import ShiftComputer

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
latencies = st.floats(min_value=1.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)
observations = st.lists(
    st.tuples(probabilities, latencies, latencies),
    min_size=1, max_size=60,
)


class TestBracketInvariants:
    @given(observations)
    @settings(max_examples=200)
    def test_watermarks_stay_in_unit_interval(self, stream):
        shift = ShiftComputer()
        for p, l_d, l_a in stream:
            shift.compute(p, l_d, l_a)
            assert 0.0 <= shift.p_lo <= 1.0
            assert 0.0 <= shift.p_hi <= 1.0

    @given(observations)
    @settings(max_examples=200)
    def test_ordering_and_target_containment_with_resets(self, stream):
        # With resets enabled (the paper's configuration) a crossed
        # bracket is repaired within the same compute() call, so the
        # post-update ordering always holds and the steered midpoint
        # lies inside the bracket.
        shift = ShiftComputer(enable_resets=True)
        for p, l_d, l_a in stream:
            shift.compute(p, l_d, l_a)
            assert shift.p_lo <= shift.p_hi
            assert shift.p_lo <= shift.target_p() <= shift.p_hi

    @given(observations)
    @settings(max_examples=100)
    def test_requested_shift_is_nonnegative_and_bounded(self, stream):
        shift = ShiftComputer()
        for p, l_d, l_a in stream:
            dp = shift.compute(p, l_d, l_a)
            assert 0.0 <= dp <= 1.0

    @given(observations)
    @settings(max_examples=100)
    def test_deadband_never_moves_watermarks(self, stream):
        shift = ShiftComputer()
        for p, l_d, l_a in stream:
            lo, hi = shift.p_lo, shift.p_hi
            dp = shift.compute(p, l_d, l_a)
            if abs(l_d - l_a) < shift.delta * l_d:
                assert dp == 0.0
                assert (shift.p_lo, shift.p_hi) == (lo, hi)


class TestReset:
    @given(observations)
    @settings(max_examples=100)
    def test_reset_restores_initial_bracket(self, stream):
        shift = ShiftComputer()
        shift.init_traced = True
        for p, l_d, l_a in stream:
            shift.compute(p, l_d, l_a)
        shift.reset()
        assert (shift.p_lo, shift.p_hi) == (0.0, 1.0)
        assert shift.target_p() == 0.5
        assert shift.last_reset_side is None
        assert shift.init_traced is False


class TestFigure4c:
    """The dynamic-reset ablation, scripted (§3.2, Figure 4c).

    Collapse the bracket around p ~ 0.5, then move the equilibrium far
    below it: without resets the computer stays stuck requesting
    near-zero shifts; with resets it reopens the stale watermark and
    requests a large corrective shift.
    """

    def collapse_then_move(self, shift):
        shift.compute(0.5, 100.0, 200.0)    # default faster: p_lo = 0.5
        shift.compute(0.505, 200.0, 100.0)  # default slower: p_hi = 0.505
        # Equilibrium jumps: default tier now much slower at p ~ 0.5.
        return shift.compute(0.502, 300.0, 100.0)

    def test_disabled_resets_stay_stuck(self):
        shift = ShiftComputer(enable_resets=False)
        dp = self.collapse_then_move(shift)
        assert shift.resets == 0
        assert dp < shift.epsilon  # stuck: shift stays inside the
        assert shift.p_lo == 0.5   # collapsed, now-wrong bracket

    def test_enabled_resets_recover(self):
        # The reset fires the moment the update would collapse the
        # bracket below epsilon while latencies are still unbalanced.
        shift = ShiftComputer(enable_resets=True)
        shift.compute(0.5, 100.0, 200.0)
        shift.compute(0.505, 200.0, 100.0)
        assert shift.resets == 1
        assert shift.last_reset_side == "lo"
        assert shift.p_lo == 0.0
        dp = shift.compute(0.502, 300.0, 100.0)
        assert dp > 0.2  # large corrective shift toward the new p*
