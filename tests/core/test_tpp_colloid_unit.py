"""Unit-level tests of the TPP+Colloid per-fault logic (§4.3)."""

import numpy as np

from repro.core.integrate import TppColloidSystem
from repro.memhw.cha import ChaSample
from repro.memhw.topology import paper_testbed
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumContext
from repro.tracking.feed import AccessFeed
from repro.tracking.hintfaults import FaultEvent


def make_system(n_pages=16, default_pages=8):
    system = TppColloidSystem(scan_fraction_per_quantum=1.0)
    pages = PageArray.uniform(n_pages, 100)
    placement = PlacementState(pages, [100 * n_pages, 100 * n_pages])
    placement.move(np.arange(default_pages), 0)
    placement.move(np.arange(default_pages, n_pages), 1)
    system.attach(placement)
    system.on_configure(paper_testbed(), static_limit_bytes=10_000,
                        quantum_ns=1e7)
    return system, placement


def make_ctx(placement, occupancy, rate, probs=None, request_rate=1.0):
    n = placement.pages.n_pages
    if probs is None:
        probs = np.full(n, 1.0 / n)
    rng = np.random.default_rng(0)
    return QuantumContext(
        time_s=0.0,
        quantum_ns=1e7,
        placement=placement,
        cha=ChaSample(np.asarray(occupancy, float),
                      np.asarray(rate, float), 1e7),
        mbm=None,
        feed=AccessFeed(probs, request_rate, 1e7, rng),
        rng=rng,
    )


class TestPerFaultEstimates:
    def test_promotes_faulted_alternate_pages_when_default_faster(self):
        system, placement = make_system()
        # Default fast (70 ns), alternate slow (300 ns).
        ctx = make_ctx(placement, occupancy=[70.0, 60.0], rate=[1.0, 0.2])
        # Inject faults directly: a hot alternate page.
        system.tracker.quantum = lambda **kw: [
            FaultEvent(page=10, time_to_fault_ns=5_000.0)
        ]
        decision = system.quantum(ctx)
        moves = dict(zip(decision.plan.page_indices.tolist(),
                         decision.plan.dst_tiers.tolist()))
        assert moves.get(10) == 0

    def test_demotes_faulted_default_pages_when_default_slower(self):
        system, placement = make_system()
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        system.tracker.quantum = lambda **kw: [
            FaultEvent(page=3, time_to_fault_ns=5_000.0)
        ]
        decision = system.quantum(ctx)
        moves = dict(zip(decision.plan.page_indices.tolist(),
                         decision.plan.dst_tiers.tolist()))
        assert moves.get(3) == 1

    def test_estimate_exceeding_dp_skips_page(self):
        """p_hat = 1/(dt*r); a tiny time-to-fault means a scorching page
        whose estimate can exceed the allowed shift."""
        system, placement = make_system()
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        # dt = 1 ns at r = 1.2 req/ns -> estimate min(1, 1/1.2) = 0.83
        # which exceeds any dp < 0.5.
        system.tracker.quantum = lambda **kw: [
            FaultEvent(page=3, time_to_fault_ns=1.0)
        ]
        decision = system.quantum(ctx)
        moves = dict(zip(decision.plan.page_indices.tolist(),
                         decision.plan.dst_tiers.tolist()))
        assert 3 not in moves or moves[3] != 1 or len(decision.plan) == 0

    def test_faults_on_wrong_tier_ignored(self):
        """In demotion mode, faults on alternate-tier pages don't move."""
        system, placement = make_system()
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        system.tracker.quantum = lambda **kw: [
            FaultEvent(page=12, time_to_fault_ns=5_000.0)  # in alternate
        ]
        decision = system.quantum(ctx)
        assert 12 not in decision.plan.page_indices

    def test_balanced_latencies_no_moves(self):
        system, placement = make_system()
        ctx = make_ctx(placement, occupancy=[140.0, 28.0],
                       rate=[1.0, 0.2])  # 140 vs 140: dead band
        system.tracker.quantum = lambda **kw: [
            FaultEvent(page=10, time_to_fault_ns=5_000.0)
        ]
        decision = system.quantum(ctx)
        assert len(decision.plan) == 0
