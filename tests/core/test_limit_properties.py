"""Property tests for the dynamic migration limit (Algorithm 1, l. 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.limit import dynamic_migration_limit
from repro.errors import ConfigurationError
from repro.units import CACHELINE_BYTES

dps = st.floats(min_value=0.0, max_value=1.0,
                allow_nan=False, allow_infinity=False)
rates = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
quanta = st.floats(min_value=1e3, max_value=1e8)
static_limits = st.integers(min_value=1, max_value=1 << 32)


class TestBudgetProperties:
    @given(dps, rates, quanta, static_limits)
    @settings(max_examples=300)
    def test_never_exceeds_static_limit(self, dp, rate, quantum, static):
        assert dynamic_migration_limit(dp, rate, quantum, static) <= static

    @given(dps, rates, quanta, static_limits)
    @settings(max_examples=300)
    def test_nonnegative(self, dp, rate, quantum, static):
        assert dynamic_migration_limit(dp, rate, quantum, static) >= 0

    @given(rates, quanta, static_limits)
    def test_zero_shift_means_zero_budget(self, rate, quantum, static):
        assert dynamic_migration_limit(0.0, rate, quantum, static) == 0

    @given(dps, quanta, static_limits)
    def test_zero_traffic_means_zero_budget(self, dp, quantum, static):
        assert dynamic_migration_limit(dp, 0.0, quantum, static) == 0

    @given(st.floats(min_value=1e-12, max_value=1.0),
           st.floats(min_value=1e-12, max_value=1.0),
           quanta, static_limits)
    @settings(max_examples=300)
    def test_positive_budget_admits_at_least_one_move(self, dp, rate,
                                                      quantum, static):
        # Regression: int() truncation used to return 0 bytes whenever
        # dp * rate * quantum * 64 < 1, freezing migration near the
        # equilibrium even though Algorithm 1 requested a shift.
        budget = dynamic_migration_limit(dp, rate, quantum, static)
        assert budget >= min(CACHELINE_BYTES, static)

    @given(dps, dps, rates, quanta, static_limits)
    @settings(max_examples=200)
    def test_monotone_in_dp(self, dp_a, dp_b, rate, quantum, static):
        lo, hi = sorted((dp_a, dp_b))
        assert (dynamic_migration_limit(lo, rate, quantum, static)
                <= dynamic_migration_limit(hi, rate, quantum, static))


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(-0.1, 1.0, 1e7, 1024)
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(0.1, -1.0, 1e7, 1024)
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(0.1, 1.0, 0.0, 1024)
        with pytest.raises(ConfigurationError):
            dynamic_migration_limit(0.1, 1.0, 1e7, 0)

    def test_sub_cacheline_product_regression(self):
        # dp = 1e-6 of a 1 req/us stream over 10 ms is far below one
        # byte; the budget must still admit one cacheline.
        budget = dynamic_migration_limit(1e-6, 1e-6, 1e7, 1 << 20)
        assert budget == CACHELINE_BYTES

    def test_tiny_static_limit_caps_the_floor(self):
        assert dynamic_migration_limit(1e-6, 1e-6, 1e7, 8) == 8
