"""Tests for the >2-tier generalization (§3.1)."""

import dataclasses

import numpy as np
import pytest

from repro.core.multitier import MultiTierBalancer, MultiTierColloidSystem
from repro.errors import ConfigurationError
from repro.memhw.topology import Machine, paper_testbed
from repro.runtime.loop import SimulationLoop
from repro.units import gib
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def three_tier_machine(scale=FAST_SCALE) -> Machine:
    """Paper testbed plus a CXL-ish third tier.

    The remote-socket tier's bandwidth is narrowed so that no single
    alternate tier can absorb the hot set alone — the configuration where
    the >2-tier recursion actually matters.
    """
    base = paper_testbed()
    narrow_remote = dataclasses.replace(
        base.tiers[1], theoretical_bandwidth=24.0,
    )
    cxl = dataclasses.replace(
        base.tiers[1],
        name="cxl",
        unloaded_latency_ns=180.0,
        theoretical_bandwidth=24.0,
        capacity_bytes=gib(96),
    )
    machine = dataclasses.replace(
        base, tiers=(base.tiers[0], narrow_remote, cxl)
    )
    return machine.with_tiers(
        tuple(t.scaled_capacity(scale) for t in machine.tiers)
    )


class TestBalancer:
    def test_balanced_latencies_hold_still(self):
        balancer = MultiTierBalancer(delta=0.05)
        shift = balancer.compute([100.0, 102.0, 101.0], [0.5, 0.3, 0.2])
        assert shift is None

    def test_shifts_from_slowest_to_fastest(self):
        balancer = MultiTierBalancer(delta=0.05)
        shift = balancer.compute([100.0, 300.0, 150.0], [0.5, 0.3, 0.2])
        assert shift is not None
        assert shift.src_tier == 1
        assert shift.dst_tier == 0
        assert 0 < shift.dp <= 0.3

    def test_dp_capped_by_source_share(self):
        balancer = MultiTierBalancer(delta=0.05, gain=1.0, max_dp=1.0)
        shift = balancer.compute([100.0, 900.0], [0.98, 0.02])
        assert shift.dp <= 0.02 + 1e-12

    def test_dp_capped_by_max(self):
        balancer = MultiTierBalancer(delta=0.05, gain=1.0, max_dp=0.05)
        shift = balancer.compute([100.0, 900.0], [0.5, 0.5])
        assert shift.dp == pytest.approx(0.05)

    def test_rejects_bad_inputs(self):
        balancer = MultiTierBalancer()
        with pytest.raises(ConfigurationError):
            balancer.compute([100.0], [1.0])
        with pytest.raises(ConfigurationError):
            balancer.compute([100.0, -5.0], [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            MultiTierBalancer(delta=0.0)


class TestThreeTierSystem:
    def test_runs_and_improves_over_static_under_contention(self):
        machine = three_tier_machine()
        workload = GupsWorkload(scale=FAST_SCALE, seed=5)
        system = MultiTierColloidSystem()
        loop = SimulationLoop(machine=machine, workload=workload,
                              system=system, contention=3, seed=5)
        metrics = loop.run(duration_s=8.0)
        start = metrics.throughput[:20].mean()
        end = metrics.throughput[-50:].mean()
        assert end > start * 1.15  # re-balancing pays off

    def test_spreads_load_across_three_tiers(self):
        machine = three_tier_machine()
        workload = GupsWorkload(scale=FAST_SCALE, seed=5)
        system = MultiTierColloidSystem()
        loop = SimulationLoop(machine=machine, workload=workload,
                              system=system, contention=3, seed=5)
        metrics = loop.run(duration_s=8.0)
        bw = metrics.app_tier_bandwidth[-50:].mean(axis=0)
        # At heavy default-tier contention, the two alternate tiers
        # should both carry application traffic.
        assert bw[1] > 0.5
        assert bw[2] > 0.5

    def test_latency_spread_narrows(self):
        machine = three_tier_machine()
        workload = GupsWorkload(scale=FAST_SCALE, seed=5)
        system = MultiTierColloidSystem()
        loop = SimulationLoop(machine=machine, workload=workload,
                              system=system, contention=3, seed=5)
        metrics = loop.run(duration_s=8.0)
        early = metrics.latencies_ns[:50]
        late = metrics.latencies_ns[-50:]
        spread = lambda window: (window.max(axis=1) / window.min(axis=1)
                                 ).mean()
        assert spread(late) < spread(early)


class TestFindBalancedSplit:
    def test_three_tier_split_balances_latencies(self):
        from repro.core.multitier import find_balanced_split
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver

        machine = three_tier_machine(scale=1.0)
        solver = EquilibriumSolver(machine.tiers)
        app = CoreGroup("app", 15, 7.0, randomness=1.0,
                        read_fraction=0.5)
        balancer = MultiTierBalancer(delta=0.05)
        split, eq = find_balanced_split(solver, app, balancer=balancer)
        assert split.shape == (3,)
        assert split.sum() == pytest.approx(1.0)
        assert (split >= 0).all()
        # Balanced means the policy's fixed point: it requests no
        # further shift at the returned split (either the dead-band
        # holds or the slowest tier carries no share to move).
        assert balancer.compute(eq.latencies_ns, split) is None
        # Starting uniform, balancing must have drained probability off
        # the narrow alternate tiers toward the wide default tier.
        assert split[0] > 1.0 / 3.0

    def test_budget_exhaustion_raises(self):
        from repro.core.multitier import find_balanced_split
        from repro.errors import ConvergenceError
        from repro.memhw.corestate import CoreGroup
        from repro.memhw.fixedpoint import EquilibriumSolver

        machine = three_tier_machine(scale=1.0)
        solver = EquilibriumSolver(machine.tiers)
        app = CoreGroup("app", 15, 7.0, randomness=1.0,
                        read_fraction=0.5)
        with pytest.raises(ConvergenceError):
            find_balanced_split(solver, app, max_rounds=1)


class TestBalancerCornerCases:
    def test_equal_latency_tiers_are_balanced(self):
        balancer = MultiTierBalancer(delta=0.05)
        assert balancer.compute([200.0, 200.0, 200.0],
                                [0.5, 0.3, 0.2]) is None

    def test_degenerate_split_zero_on_slow_tier_holds(self):
        # All probability already off the slow tier: nothing to shift,
        # even though the latency gap exceeds the dead-band.
        balancer = MultiTierBalancer(delta=0.05)
        assert balancer.compute([100.0, 400.0], [1.0, 0.0]) is None

    def test_degenerate_split_one_on_slow_tier_shifts(self):
        balancer = MultiTierBalancer(delta=0.05, max_dp=0.10)
        shift = balancer.compute([100.0, 400.0], [0.0, 1.0])
        assert shift is not None
        assert shift.src_tier == 1 and shift.dst_tier == 0
        assert shift.dp == pytest.approx(0.10)

    def test_dp_never_exceeds_source_share_at_the_edge(self):
        balancer = MultiTierBalancer(delta=0.05, max_dp=0.5)
        shift = balancer.compute([100.0, 900.0], [0.99, 0.01])
        assert shift is not None
        assert shift.dp <= 0.01 + 1e-12

    def test_single_tier_vector_rejected(self):
        balancer = MultiTierBalancer()
        with pytest.raises(ConfigurationError, match=">=2"):
            balancer.compute([200.0], [1.0])

    def test_mismatched_vectors_rejected(self):
        balancer = MultiTierBalancer()
        with pytest.raises(ConfigurationError):
            balancer.compute([200.0, 300.0], [1.0])

    def test_nonpositive_latency_rejected(self):
        balancer = MultiTierBalancer()
        with pytest.raises(ConfigurationError, match="positive"):
            balancer.compute([0.0, 300.0], [0.5, 0.5])


class TestFindBalancedSplitCornerCases:
    def test_single_tier_solver_rejected(self):
        from repro.core.multitier import find_balanced_split
        from repro.memhw.fixedpoint import EquilibriumSolver

        base = paper_testbed()
        solver = EquilibriumSolver(base.tiers[:1])
        app = GupsWorkload(scale=FAST_SCALE, seed=1).core_group()
        with pytest.raises(ConfigurationError, match="two tiers"):
            find_balanced_split(solver, app)

    def test_split_is_a_distribution_at_the_fixed_point(self):
        from repro.core.multitier import find_balanced_split
        from repro.memhw.fixedpoint import EquilibriumSolver

        machine = three_tier_machine()
        solver = EquilibriumSolver(machine.tiers)
        app = GupsWorkload(scale=FAST_SCALE, seed=1).core_group()
        balancer = MultiTierBalancer(delta=0.05)
        split, eq = find_balanced_split(solver, app, balancer=balancer)
        assert split.sum() == pytest.approx(1.0)
        assert (split >= 0).all()
        # A light app can't load the fast tier up to the slow tiers'
        # unloaded latencies, so "balanced" degenerates to draining the
        # slowest tier: either the dead-band holds or the slowest tier
        # carries no share left to move.
        assert balancer.compute(eq.latencies_ns, split) is None
        lat = np.asarray(eq.latencies_ns)
        if lat.max() - lat.min() >= 0.05 * lat.min():
            assert split[int(np.argmax(lat))] == pytest.approx(0.0)
