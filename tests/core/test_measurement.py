"""Tests for the CHA-based latency monitor."""

import numpy as np
import pytest

from repro.core.measurement import LatencyMonitor
from repro.errors import ConfigurationError
from repro.memhw.cha import ChaSample


def sample(occupancy, rate, duration=1e7):
    return ChaSample(
        occupancy=np.asarray(occupancy, dtype=float),
        rate=np.asarray(rate, dtype=float),
        duration_ns=duration,
    )


class TestLittlesLawEstimation:
    def test_latency_is_occupancy_over_rate(self):
        monitor = LatencyMonitor([65.0, 130.0])
        monitor.update(sample([100.0, 30.0], [1.0, 0.2]))
        lat = monitor.latencies_ns()
        assert lat[0] == pytest.approx(100.0)
        assert lat[1] == pytest.approx(150.0)

    def test_idle_tier_reports_unloaded_latency(self):
        monitor = LatencyMonitor([65.0, 130.0])
        monitor.update(sample([100.0, 0.0], [1.0, 0.0]))
        assert monitor.latencies_ns()[1] == pytest.approx(130.0)

    def test_no_samples_reports_unloaded(self):
        monitor = LatencyMonitor([65.0, 130.0])
        np.testing.assert_allclose(monitor.latencies_ns(), [65.0, 130.0])

    def test_estimates_clamped_at_unloaded(self):
        """Noise cannot push the estimate below physical latency."""
        monitor = LatencyMonitor([65.0, 130.0])
        monitor.update(sample([10.0, 1.0], [1.0, 0.2]))  # 10 ns, 5 ns
        lat = monitor.latencies_ns()
        assert lat[0] == 65.0
        assert lat[1] == 130.0


class TestEwmaSmoothing:
    def test_first_sample_initializes(self):
        monitor = LatencyMonitor([65.0, 130.0], ewma_alpha=0.2)
        monitor.update(sample([200.0, 40.0], [1.0, 0.2]))
        assert monitor.latencies_ns()[0] == pytest.approx(200.0)

    def test_smoothing_dampens_spikes(self):
        monitor = LatencyMonitor([65.0, 130.0], ewma_alpha=0.2)
        for __ in range(20):
            monitor.update(sample([100.0, 30.0], [1.0, 0.2]))
        monitor.update(sample([1000.0, 30.0], [1.0, 0.2]))  # 10x spike
        # One spike sample moves the estimate by at most alpha's worth.
        assert monitor.latencies_ns()[0] < 300.0

    def test_converges_to_new_level(self):
        monitor = LatencyMonitor([65.0, 130.0], ewma_alpha=0.3)
        for __ in range(5):
            monitor.update(sample([100.0, 30.0], [1.0, 0.2]))
        for __ in range(40):
            monitor.update(sample([300.0, 30.0], [1.0, 0.2]))
        assert monitor.latencies_ns()[0] == pytest.approx(300.0, rel=0.02)

    def test_occupancy_and_rate_smoothed_separately(self):
        """The paper smooths O and R before dividing; a sample with both
        doubled must leave the latency estimate unchanged."""
        monitor = LatencyMonitor([65.0, 130.0], ewma_alpha=0.5)
        monitor.update(sample([100.0, 30.0], [1.0, 0.2]))
        before = monitor.latencies_ns()[0]
        monitor.update(sample([200.0, 60.0], [2.0, 0.4]))
        assert monitor.latencies_ns()[0] == pytest.approx(before)


class TestMeasuredP:
    def test_measured_p_is_rate_share(self):
        monitor = LatencyMonitor([65.0, 130.0])
        monitor.update(sample([100.0, 30.0], [0.8, 0.2]))
        assert monitor.measured_p() == pytest.approx(0.8)

    def test_measured_p_zero_when_idle(self):
        monitor = LatencyMonitor([65.0, 130.0])
        assert monitor.measured_p() == 0.0

    def test_reset_forgets_state(self):
        monitor = LatencyMonitor([65.0, 130.0])
        monitor.update(sample([100.0, 30.0], [1.0, 0.2]))
        monitor.reset()
        assert monitor.samples_seen == 0
        np.testing.assert_allclose(monitor.latencies_ns(), [65.0, 130.0])


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            LatencyMonitor([65.0], ewma_alpha=0.0)

    def test_rejects_bad_unloaded(self):
        with pytest.raises(ConfigurationError):
            LatencyMonitor([])
        with pytest.raises(ConfigurationError):
            LatencyMonitor([65.0, -1.0])

    def test_rejects_shape_mismatch(self):
        monitor = LatencyMonitor([65.0, 130.0])
        with pytest.raises(ConfigurationError):
            monitor.update(sample([1.0], [1.0]))
