"""Tests for the Algorithm 1 controller."""

import numpy as np
import pytest

from repro.core.controller import (
    ColloidController,
    ColloidDecision,
    interleave_plans,
)
from repro.core.measurement import LatencyMonitor
from repro.core.shift import ShiftComputer
from repro.errors import ConfigurationError
from repro.memhw.cha import ChaSample
from repro.pages.migration import MigrationPlan
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumContext


def make_controller(static_limit=10**6):
    monitor = LatencyMonitor([65.0, 130.0], ewma_alpha=1.0)
    shift = ShiftComputer(delta=0.05, epsilon=0.01)
    return ColloidController(monitor, shift, static_limit)


def make_ctx(placement, occupancy, rate):
    sample = ChaSample(
        occupancy=np.asarray(occupancy, dtype=float),
        rate=np.asarray(rate, dtype=float),
        duration_ns=1e7,
    )
    return QuantumContext(
        time_s=0.0, quantum_ns=1e7, placement=placement, cha=sample,
        mbm=None, feed=None, rng=np.random.default_rng(0),
    )


def make_placement(tiers, page_bytes=100):
    pages = PageArray.uniform(len(tiers), page_bytes)
    placement = PlacementState(
        pages, [page_bytes * len(tiers)] * 2
    )
    arr = np.asarray(tiers)
    for t in (0, 1):
        placement.move(np.nonzero(arr == t)[0], t)
    return placement


def take_all_finder(pages_to_return):
    def find(src_tier, dp, budget):
        return np.asarray(pages_to_return, dtype=np.int64)
    return find


class TestInterleave:
    def test_alternates_moves(self):
        a = MigrationPlan(np.array([1, 2]), np.array([1, 1]))
        b = MigrationPlan(np.array([3, 4]), np.array([0, 0]))
        merged = interleave_plans(a, b)
        assert list(merged.page_indices) == [1, 3, 2, 4]
        assert list(merged.dst_tiers) == [1, 0, 1, 0]

    def test_uneven_lengths(self):
        a = MigrationPlan(np.array([1]), np.array([1]))
        b = MigrationPlan(np.array([3, 4, 5]), np.array([0, 0, 0]))
        merged = interleave_plans(a, b)
        assert list(merged.page_indices) == [1, 3, 4, 5]

    def test_empty_sides(self):
        a = MigrationPlan.empty()
        b = MigrationPlan(np.array([7]), np.array([0]))
        assert list(interleave_plans(a, b).page_indices) == [7]
        assert list(interleave_plans(b, a).page_indices) == [7]


class TestDecide:
    def test_balanced_latencies_hold(self):
        controller = make_controller()
        placement = make_placement([0, 0, 1, 1])
        ctx = make_ctx(placement, occupancy=[100.0, 20.4],
                       rate=[1.0, 0.2])  # 100 vs 102 ns: inside delta band
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([]), coldness=np.full(4, 0.25)
        )
        assert decision.mode == "hold"
        assert len(decision.plan) == 0

    def test_demotion_mode_when_default_slower(self):
        controller = make_controller()
        placement = make_placement([0, 0, 1, 1])
        ctx = make_ctx(placement, occupancy=[300.0, 28.0],
                       rate=[1.0, 0.2])  # 300 vs 140
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([0]), coldness=np.full(4, 0.25)
        )
        assert decision.mode == "demotion"
        assert list(decision.plan.dst_tiers) == [1]

    def test_promotion_mode_when_default_faster(self):
        controller = make_controller()
        placement = make_placement([0, 1, 1, 1])
        ctx = make_ctx(placement, occupancy=[70.0, 60.0],
                       rate=[1.0, 0.2])  # 70 vs 300
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([1]), coldness=np.full(4, 0.25)
        )
        assert decision.mode == "promotion"
        assert 1 in decision.plan.page_indices

    def test_promotion_into_full_tier_adds_make_room_demotions(self):
        controller = make_controller()
        # Default tier full: pages 0,1 in tier0 with capacity 200.
        pages = PageArray.uniform(4, 100)
        placement = PlacementState(pages, [200, 400])
        placement.move(np.array([0, 1]), 0)
        placement.move(np.array([2, 3]), 1)
        ctx = make_ctx(placement, occupancy=[70.0, 60.0], rate=[1.0, 0.2])
        controller.observe(ctx)
        coldness = np.array([0.01, 0.4, 0.3, 0.29])  # page 0 coldest
        decision = controller.decide(
            ctx, take_all_finder([2]), coldness=coldness
        )
        moves = dict(zip(decision.plan.page_indices.tolist(),
                         decision.plan.dst_tiers.tolist()))
        assert moves[2] == 0          # the promotion
        assert moves[0] == 1          # coldest page demoted to make room
        # Demotion comes first so the promotion has space.
        assert list(decision.plan.page_indices)[0] == 0

    def test_budget_uses_dynamic_limit(self):
        controller = make_controller(static_limit=10**9)
        placement = make_placement([0, 0, 1, 1])
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([0]), coldness=np.full(4, 0.25)
        )
        # dp * (R_D + R_A) * 64 * quantum, with dp from the first step.
        dp = decision.dp
        expected = int(dp * 1.2 * 64 * 1e7)
        assert decision.budget_bytes == expected

    def test_period_scales_budget(self):
        controller = make_controller(static_limit=10**3)
        placement = make_placement([0, 0, 1, 1])
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([0]), coldness=np.full(4, 0.25),
            period_ns=50e7,  # 50 quanta
        )
        assert decision.budget_bytes == 50 * 10**3

    def test_empty_finder_holds(self):
        controller = make_controller()
        placement = make_placement([0, 0, 1, 1])
        ctx = make_ctx(placement, occupancy=[300.0, 28.0], rate=[1.0, 0.2])
        controller.observe(ctx)
        decision = controller.decide(
            ctx, take_all_finder([]), coldness=np.full(4, 0.25)
        )
        assert decision.mode == "hold"

    def test_rejects_nonpositive_static_limit(self):
        monitor = LatencyMonitor([65.0, 130.0])
        with pytest.raises(ConfigurationError):
            ColloidController(monitor, ShiftComputer(), 0)

    def test_hold_decision_telemetry(self):
        decision = ColloidDecision.hold(0.4, 100.0, 101.0)
        assert decision.mode == "hold"
        assert decision.dp == 0.0
        assert decision.p == 0.4
