"""Property tests for repeated-run aggregation (Figure 1 error bars)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.exec.result import CellResult
from repro.exec.runner import aggregate

throughputs = st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)
tails = st.lists(
    st.floats(min_value=1.0, max_value=1e5,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=2,
)


def cell(throughput, tail=(100.0, 150.0), mode="steady"):
    return CellResult(
        mode=mode, throughput=throughput, converged=True,
        duration_s=4.0, tail_latencies_ns=tuple(tail),
        tail_default_share=0.8, cpu_work={},
    )


class TestAggregateProperties:
    @given(st.lists(throughputs, min_size=1, max_size=10))
    @settings(max_examples=200)
    def test_mean_lies_between_extremes(self, values):
        agg = aggregate([cell(v) for v in values])
        slack = 1e-9 * max(1.0, max(values))
        assert agg.minimum == min(values)
        assert agg.maximum == max(values)
        assert agg.minimum - slack <= agg.throughput <= agg.maximum + slack
        assert agg.spread >= 0.0

    @given(st.lists(tails, min_size=1, max_size=6))
    @settings(max_examples=200)
    def test_tail_latencies_averaged_componentwise(self, tail_sets):
        agg = aggregate([cell(10.0, tail=t) for t in tail_sets])
        n = len(tail_sets)
        for i in range(2):
            expected = sum(t[i] for t in tail_sets) / n
            assert agg.tail_latencies_ns[i] == pytest.approx(expected)

    @given(throughputs)
    def test_single_run_collapses(self, value):
        agg = aggregate([cell(value)])
        assert agg.throughput == value
        assert agg.throughput_range == (value, value)
        assert agg.spread == 0.0


class TestAggregateValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_mixed_modes_rejected(self):
        with pytest.raises(ConfigurationError, match="mixed run modes"):
            aggregate([cell(1.0, mode="steady"),
                       cell(2.0, mode="best_case")])

    def test_mismatched_tier_counts_rejected(self):
        # Regression: indexing every run by the first run's tier count
        # used to raise a bare IndexError (or silently drop tiers when
        # the first run was the short one).
        with pytest.raises(ConfigurationError,
                           match="mismatched tail_latencies_ns"):
            aggregate([cell(1.0, tail=(100.0, 150.0)),
                       cell(2.0, tail=(100.0, 150.0, 200.0))])
