"""Per-cell diagnostics opt-in (REPRO_DIAGNOSE) in the exec layer."""

import pytest

from repro.exec.execute import execute_spec
from repro.exec.result import CellResult
from repro.experiments.common import ExperimentConfig, steady_cell_spec
from repro.obs.diagnose import DIAGNOSE_ENV_VAR

TINY = ExperimentConfig(scale=0.03, seed=7)


def tiny_spec():
    return steady_cell_spec("hemem+colloid", 1, TINY,
                            max_duration_s=4.0)


class TestExecuteOptIn:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(DIAGNOSE_ENV_VAR, raising=False)
        result = execute_spec(tiny_spec())
        assert result.diagnostics is None

    def test_enabled_attaches_summary(self, monkeypatch):
        monkeypatch.setenv(DIAGNOSE_ENV_VAR, "1")
        result = execute_spec(tiny_spec())
        assert isinstance(result.diagnostics, dict)
        quanta = result.diagnostics["convergence_quanta"]
        assert quanta and all(q is not None for q in quanta)
        assert result.diagnostics["oscillation_score"] < 0.35

    def test_diagnostics_do_not_perturb_results(self, monkeypatch):
        # Tracing is observation only: the simulated outcome must be
        # bit-identical with and without diagnostics.
        monkeypatch.delenv(DIAGNOSE_ENV_VAR, raising=False)
        plain = execute_spec(tiny_spec())
        monkeypatch.setenv(DIAGNOSE_ENV_VAR, "1")
        diagnosed = execute_spec(tiny_spec())
        assert diagnosed.throughput == plain.throughput
        assert diagnosed.tail_latencies_ns == plain.tail_latencies_ns


def make_result(**overrides):
    fields = dict(mode="steady", throughput=1.5, converged=True,
                  duration_s=2.0, tail_latencies_ns=(150.0, 100.0),
                  tail_default_share=0.7, cpu_work={"scan": 3.0})
    fields.update(overrides)
    return CellResult(**fields)


class TestResultRoundTrip:
    def test_diagnostics_survive_serialization(self):
        result = make_result(
            diagnostics={"convergence_quanta": [4],
                         "oscillation_score": 0.0})
        clone = CellResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.diagnostics["convergence_quanta"] == [4]

    def test_pre_diagnostics_payload_loads_as_none(self):
        # Undiagnosed results serialize without the key at all (the
        # golden fixtures pin that shape), and older payloads without
        # it load as None.
        data = make_result().to_dict()
        assert "diagnostics" not in data
        loaded = CellResult.from_dict(data)
        assert loaded.diagnostics is None
