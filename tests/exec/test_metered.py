"""Cross-process metrics: executor sampling and pool-snapshot merge."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import Runner
from repro.experiments.common import ExperimentConfig, best_case_spec
from repro.obs.metrics import METRICS, METRICS_ENV_VAR

TINY = ExperimentConfig(scale=0.03, seed=7)


@pytest.fixture
def fleet_metrics(monkeypatch):
    """Enable the global registry with clean state, restoring after."""
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    saved = (METRICS.enabled, METRICS._counters, METRICS._gauges,
             METRICS._histograms)
    METRICS.enabled = True
    METRICS._counters = {}
    METRICS._gauges = {}
    METRICS._histograms = {}
    yield METRICS
    (METRICS.enabled, METRICS._counters, METRICS._gauges,
     METRICS._histograms) = saved


def counters(registry):
    return registry.snapshot().counters


class TestSerialSampling:
    def test_cells_counted_per_mode(self, fleet_metrics):
        Runner().run([best_case_spec(0, TINY), best_case_spec(1, TINY)])
        snapshot = fleet_metrics.snapshot()
        assert snapshot.counters["repro_cells_best_case_total"] == 2
        assert snapshot.histograms["repro_cell_wall_seconds"]["count"] == 2

    def test_cache_hits_and_misses_counted(self, fleet_metrics, tmp_path):
        specs = [best_case_spec(0, TINY), best_case_spec(2, TINY)]
        Runner(cache=ResultCache(tmp_path)).run(specs)
        assert counters(fleet_metrics)["repro_cache_misses_total"] == 2
        assert counters(fleet_metrics)["repro_cache_puts_total"] == 2
        Runner(cache=ResultCache(tmp_path)).run(specs)
        assert counters(fleet_metrics)["repro_cache_hits_total"] == 2

    def test_disabled_registry_records_nothing(self):
        assert not METRICS.enabled  # tests run with metrics off
        before = counters(METRICS)
        Runner().run([best_case_spec(3, TINY)])
        assert counters(METRICS) == before


class TestPoolMerge:
    def test_parallel_counters_match_serial(self, fleet_metrics):
        specs = [best_case_spec(i, TINY) for i in range(3)]
        Runner(jobs=1).run(specs)
        serial = counters(fleet_metrics)
        fleet_metrics.reset()
        Runner(jobs=2).run(specs)
        parallel = counters(fleet_metrics)
        assert parallel == serial
        assert parallel["repro_cells_best_case_total"] == 3

    def test_parallel_histograms_merge_bucketwise(self, fleet_metrics):
        specs = [best_case_spec(i, TINY) for i in range(3)]
        Runner(jobs=2).run(specs)
        hist = fleet_metrics.snapshot().histograms[
            "repro_cell_wall_seconds"]
        assert hist["count"] == 3
        assert (sum(hist["counts"]) + hist["underflow"]
                + hist["overflow"]) == 3
