"""Exec-layer tests for colocated (multi-tenant) specs."""

import pytest

from repro.exec.execute import build_loop, execute_spec
from repro.exec.result import CellResult
from repro.exec.runner import Runner
from repro.exec.spec import (
    COLOCATION_SYSTEM,
    MachineSpec,
    RunSpec,
    TenantCellSpec,
    WorkloadSpec,
    static_contention,
)

SCALE = 0.03


def colocated_spec(**overrides) -> RunSpec:
    half = SCALE / 2.0
    kwargs = dict(
        system=COLOCATION_SYSTEM,
        workload=WorkloadSpec.make("gups", scale=half, seed=7),
        machine=MachineSpec(scale=SCALE),
        mode="steady",
        contention=static_contention(0),
        seed=7,
        min_duration_s=0.5,
        max_duration_s=1.0,
        tenants=(
            TenantCellSpec.make(
                "a", WorkloadSpec.make("gups", scale=half, seed=7),
                "hemem+colloid"),
            TenantCellSpec.make(
                "b", WorkloadSpec.make("gups", scale=half, seed=8),
                "hemem"),
        ),
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestBuildLoop:
    def test_tenant_spec_builds_colocated_loop(self):
        from repro.runtime.colocation import ColocatedLoop

        loop = build_loop(colocated_spec())
        assert isinstance(loop, ColocatedLoop)
        assert loop.tenant_names == ["a", "b"]
        assert loop.tenant_systems["a"].name == "hemem+colloid"
        assert loop.tenant_systems["b"].name == "hemem"

    def test_single_tenant_spec_builds_simulation_loop(self):
        from repro.runtime.loop import SimulationLoop

        spec = colocated_spec(system="hemem", tenants=())
        assert isinstance(build_loop(spec), SimulationLoop)


class TestExecuteColocated:
    def test_result_carries_tenant_payload(self):
        result = execute_spec(colocated_spec())
        assert result.tenants is not None
        assert set(result.tenants) == {"a", "b"}
        for payload in result.tenants.values():
            assert payload["throughput"] > 0
            assert len(payload["tail_latencies_ns"]) == 2
            assert 0.0 <= payload["tail_default_share"] <= 1.0
            assert payload["migration_bytes_total"] >= 0
        # Tenant-prefixed CPU-work attribution.
        assert any(key.startswith("a.") for key in result.cpu_work)
        assert any(key.startswith("b.") for key in result.cpu_work)

    def test_result_roundtrips_with_tenants(self):
        result = execute_spec(colocated_spec())
        again = CellResult.from_dict(result.to_dict())
        assert again == result

    def test_single_tenant_result_has_no_tenants_key(self):
        spec = colocated_spec(system="hemem", tenants=())
        result = execute_spec(spec)
        assert result.tenants is None
        assert "tenants" not in result.to_dict()

    def test_execution_is_deterministic(self):
        a = execute_spec(colocated_spec())
        b = execute_spec(colocated_spec())
        assert a == b


class TestRunnerAggregation:
    def test_aggregated_cell_merges_tenant_payloads(self):
        runner = Runner()
        grid = runner.run_grid({"cell": colocated_spec()}, n_runs=2)
        cell = grid["cell"]
        assert len(cell.runs) == 2
        tenants = cell.tenants
        assert set(tenants) == {"a", "b"}
        expected = sum(
            run.tenants["a"]["throughput"] for run in cell.runs
        ) / len(cell.runs)
        assert tenants["a"]["throughput"] == pytest.approx(expected)

    def test_single_tenant_cells_have_no_tenants(self):
        runner = Runner()
        spec = colocated_spec(system="hemem", tenants=())
        grid = runner.run_grid({"cell": spec}, n_runs=1)
        assert grid["cell"].tenants is None
