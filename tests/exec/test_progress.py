"""FleetProgress rendering, tracing, and Runner integration."""

import io
import math

from repro.exec.progress import FleetProgress
from repro.exec.runner import Runner
from repro.experiments.common import ExperimentConfig, best_case_spec
from repro.obs.tracer import Tracer

TINY = ExperimentConfig(scale=0.03, seed=7)


class FakeClock:
    """Monotonic clock advancing a fixed amount per reading."""

    def __init__(self, tick_s: float = 1.0) -> None:
        self.now = 0.0
        self.tick_s = tick_s

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick_s
        return value


class TtyStream(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestRendering:
    def test_non_tty_line_per_cell(self):
        stream = io.StringIO()
        progress = FleetProgress(stream=stream, clock=FakeClock())
        progress.begin(2)
        progress.cell_start("a")  # non-TTY: starts are silent
        progress.cell_done("cell-a")
        progress.cell_done("cell-b")
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]  50% cell-a")
        assert "cells/s" in lines[0]
        assert "eta" in lines[0]
        # The last cell has no remaining work, so no ETA.
        assert lines[1].startswith("[2/2] 100% cell-b")
        assert "eta" not in lines[1]

    def test_tty_refreshes_in_place_and_pads(self):
        stream = TtyStream()
        progress = FleetProgress(stream=stream, clock=FakeClock())
        progress.begin(2)
        progress.cell_done("a-much-longer-label")
        progress.cell_done("b")
        progress.finish()
        output = stream.getvalue()
        assert output.count("\r") == 2
        # Second render pads over the first, longer line.
        first, second = output.split("\r")[1:]
        assert len(second.rstrip("\n")) >= len(first)
        assert output.endswith("\n")

    def test_empty_batch_is_silent(self):
        stream = io.StringIO()
        progress = FleetProgress(stream=stream, clock=FakeClock())
        progress.begin(0)
        progress.finish()
        assert stream.getvalue() == ""

    def test_eta_formatting_scales(self):
        from repro.exec.progress import _format_eta

        assert _format_eta(5.0) == "5s"
        assert _format_eta(150.0) == "2m30s"
        assert _format_eta(7200.0) == "2h00m"

    def test_zero_elapsed_clamped_no_inf_or_garbage(self):
        # Sub-millisecond cells (warm caches, tiny grids) used to
        # divide by ~0 elapsed: astronomical cells/s and a garbage ETA.
        from repro.exec.progress import MIN_RATE_ELAPSED_S

        stream = io.StringIO()
        tracer = Tracer()
        progress = FleetProgress(stream=stream, tracer=tracer,
                                 clock=FakeClock(tick_s=0.0))
        progress.begin(3)
        progress.cell_done("instant-a")
        progress.cell_done("instant-b")
        progress.finish()
        events = tracer.events("run_progress")
        for event in events:
            assert event["wall_elapsed_s"] >= MIN_RATE_ELAPSED_S
            assert math.isfinite(event["cells_per_s"])
            assert event["eta_s"] is None or \
                math.isfinite(event["eta_s"])
        output = stream.getvalue()
        assert "inf" not in output and "nan" not in output
        # A clamped rate still yields a (tiny, finite) ETA for the
        # remaining cell.
        assert "eta" in output.splitlines()[-1]


class TestTraceEvents:
    def test_run_progress_events_emitted(self):
        tracer = Tracer()
        progress = FleetProgress(stream=io.StringIO(), tracer=tracer,
                                 clock=FakeClock())
        progress.begin(2)
        progress.cell_done("first")
        progress.cell_done("second")
        progress.finish()
        events = tracer.events("run_progress")
        assert [e["completed"] for e in events] == [1, 2]
        assert all(e["total"] == 2 for e in events)
        assert events[0]["label"] == "first"
        assert events[0]["cells_per_s"] > 0
        assert events[1]["eta_s"] == 0.0


class TestFaultReporting:
    def test_cell_start_emits_trace_event(self):
        tracer = Tracer()
        progress = FleetProgress(stream=io.StringIO(), tracer=tracer,
                                 clock=FakeClock())
        progress.begin(2)
        progress.cell_start("a")
        progress.cell_start("a", attempt=1)
        progress.finish()
        events = tracer.events("cell_start")
        assert [e["attempt"] for e in events] == [0, 1]
        assert all(e["label"] == "a" for e in events)

    def test_retry_renders_durable_line_without_advancing(self):
        stream = io.StringIO()
        tracer = Tracer()
        progress = FleetProgress(stream=stream, tracer=tracer,
                                 clock=FakeClock())
        progress.begin(1)
        progress.cell_retried("cell-a", attempt=0,
                              error=RuntimeError("boom"), backoff_s=0.5)
        progress.cell_done("cell-a")
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("retry cell-a")
        assert "RuntimeError: boom" in lines[0]
        assert "backoff 0.5s" in lines[0]
        # The retry did not consume a completion slot.
        assert lines[1].startswith("[1/1] 100%")
        (event,) = tracer.events("cell_retried")
        assert event["attempt"] == 0
        assert event["error_type"] == "RuntimeError"
        assert event["backoff_s"] == 0.5

    def test_failure_counts_toward_completion(self):
        stream = io.StringIO()
        tracer = Tracer()
        progress = FleetProgress(stream=stream, tracer=tracer,
                                 clock=FakeClock())
        progress.begin(2)
        progress.cell_failed("cell-a", attempts=3,
                             error=RuntimeError("boom"))
        progress.cell_done("cell-b")
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[1/2] FAILED cell-a after 3")
        assert lines[1].startswith("[2/2] 100%")
        (event,) = tracer.events("cell_failed")
        assert event["attempts"] == 3
        assert event["error_type"] == "RuntimeError"

    def test_tty_durable_line_clears_refresh_line_first(self):
        stream = TtyStream()
        progress = FleetProgress(stream=stream, clock=FakeClock())
        progress.begin(2)
        progress.cell_done("a-long-running-label")
        in_place = stream.getvalue().split("\r")[-1]
        progress.cell_retried("b", attempt=0, error=RuntimeError("x"))
        output = stream.getvalue()
        # The in-place line is blanked out, then the durable retry line
        # lands on a terminated line of its own.
        assert "\r" + " " * len(in_place) + "\r" in output
        assert any(line.startswith("retry b")
                   for line in output.splitlines())
        assert output.endswith("\n")


class TestFinish:
    def test_finish_is_idempotent_on_tty(self):
        stream = TtyStream()
        progress = FleetProgress(stream=stream, clock=FakeClock())
        progress.begin(1)
        progress.cell_done("a")
        progress.finish()
        progress.finish()
        assert stream.getvalue().count("\n") == 1

    def test_finish_without_begin_is_noop(self):
        stream = TtyStream()
        FleetProgress(stream=stream, clock=FakeClock()).finish()
        assert stream.getvalue() == ""

    def test_raising_fleet_still_terminates_line(self, monkeypatch):
        # Regression: an exception mid-batch used to skip finish(),
        # leaving the TTY refresh line unterminated.
        from repro.errors import ConfigurationError

        monkeypatch.setattr(
            "repro.exec.runner.execute_spec",
            lambda spec: (_ for _ in ()).throw(
                ConfigurationError("boom")),
        )
        stream = TtyStream()
        reporter = FleetProgress(stream=stream, clock=FakeClock())
        runner = Runner(reporter=reporter)
        import pytest

        with pytest.raises(ConfigurationError):
            runner.run([best_case_spec(0, TINY)])
        assert not reporter._active
        assert stream.getvalue().endswith("\n")


class TestRunnerIntegration:
    def test_runner_reports_each_executed_cell(self):
        stream = io.StringIO()
        reporter = FleetProgress(stream=stream, clock=FakeClock())
        runner = Runner(reporter=reporter)
        runner.run([best_case_spec(0, TINY), best_case_spec(1, TINY)])
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].startswith("[2/2] 100%")

    def test_deduped_cells_not_reported(self):
        stream = io.StringIO()
        reporter = FleetProgress(stream=stream, clock=FakeClock())
        runner = Runner(reporter=reporter)
        spec = best_case_spec(0, TINY)
        runner.run([spec, spec])
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("[1/1]")
