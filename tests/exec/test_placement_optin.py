"""Per-cell placement-audit opt-in (REPRO_PLACEMENT_AUDIT) in the exec
layer, and the CellResult/AggregatedCell placement payload plumbing."""

import pytest

from repro.exec.execute import execute_spec
from repro.exec.result import CellResult
from repro.exec.runner import aggregate
from repro.experiments.common import ExperimentConfig, steady_cell_spec
from repro.obs.diagnose import DIAGNOSE_ENV_VAR
from repro.obs.placement import PLACEMENT_AUDIT_ENV_VAR

TINY = ExperimentConfig(scale=0.03, seed=7)


def tiny_spec():
    return steady_cell_spec("hemem+colloid", 1, TINY,
                            max_duration_s=4.0)


class TestExecuteOptIn:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        result = execute_spec(tiny_spec())
        assert result.placement is None

    def test_enabled_attaches_payload(self, monkeypatch):
        monkeypatch.delenv(DIAGNOSE_ENV_VAR, raising=False)
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, "5")
        result = execute_spec(tiny_spec())
        assert isinstance(result.placement, dict)
        assert result.placement["n_samples"] > 0
        assert result.placement["n_audits"] > 0
        assert "gap_balance_last" in result.placement
        # The audit alone must not drag diagnostics in.
        assert result.diagnostics is None

    def test_composes_with_diagnostics(self, monkeypatch):
        monkeypatch.setenv(DIAGNOSE_ENV_VAR, "1")
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, "1")
        result = execute_spec(tiny_spec())
        assert isinstance(result.placement, dict)
        assert isinstance(result.diagnostics, dict)

    def test_audit_does_not_perturb_results(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        plain = execute_spec(tiny_spec())
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, "1")
        audited = execute_spec(tiny_spec())
        assert audited.throughput == plain.throughput
        assert audited.tail_latencies_ns == plain.tail_latencies_ns


def make_result(**overrides):
    fields = dict(mode="steady", throughput=1.5, converged=True,
                  duration_s=2.0, tail_latencies_ns=(150.0, 100.0),
                  tail_default_share=0.7, cpu_work={"scan": 3.0})
    fields.update(overrides)
    return CellResult(**fields)


PAYLOAD = {"n_samples": 40, "n_audits": 4, "ping_pong_pages_peak": 2,
           "wasted_migration_bytes": 8192, "flow_bytes_total": 1 << 20,
           "gap_balance_first": 0.3, "gap_balance_last": 0.02,
           "gap_packed_first": 0.1, "gap_packed_last": 0.05}


class TestResultRoundTrip:
    def test_placement_survives_serialization(self):
        result = make_result(placement=dict(PAYLOAD))
        clone = CellResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.placement["n_audits"] == 4

    def test_unaudited_payload_keeps_its_shape(self):
        data = make_result().to_dict()
        assert "placement" not in data
        assert CellResult.from_dict(data).placement is None


class TestAggregatedPlacement:
    def test_none_without_payloads(self):
        cell = aggregate([make_result(), make_result()])
        assert cell.placement is None

    def test_merges_gaps_and_churn_across_runs(self):
        a = dict(PAYLOAD)
        b = dict(PAYLOAD, gap_balance_last=0.04,
                 ping_pong_pages_peak=5, wasted_migration_bytes=1024)
        cell = aggregate([make_result(placement=a),
                          make_result(placement=b)])
        merged = cell.placement
        assert merged["gap_balance_last"] == pytest.approx(0.03)
        assert merged["ping_pong_pages_peak"] == 5
        assert merged["wasted_migration_bytes"] == 8192
