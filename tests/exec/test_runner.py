"""Runner batching: determinism, dedup, caching, repetition."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.result import CellResult
from repro.exec.runner import Runner, aggregate, expand_seeds
from repro.experiments.common import (
    ExperimentConfig,
    best_case_spec,
    run_gups_steady_state,
    steady_cell_spec,
)

#: Tiny geometry + short caps keep every simulated cell under a second.
TINY = ExperimentConfig(scale=0.03, seed=7)
CAP_S = 4.0


def tiny_cell(system: str, intensity: int):
    return steady_cell_spec(system, intensity, TINY,
                            max_duration_s=CAP_S)


class TestDeterminism:
    def test_parallel_equals_serial_bit_for_bit(self):
        specs = [
            tiny_cell("hemem", 0),
            tiny_cell("hemem+colloid", 3),
        ]
        serial = Runner(jobs=1).run(specs)
        parallel = Runner(jobs=2).run(specs)
        for spec in specs:
            assert parallel[spec].throughput == serial[spec].throughput
            assert parallel[spec].tail_latencies_ns == (
                serial[spec].tail_latencies_ns
            )
            assert parallel[spec].tail_default_share == (
                serial[spec].tail_default_share
            )

    def test_runner_matches_direct_helper(self):
        spec = tiny_cell("hemem", 0)
        direct = run_gups_steady_state("hemem", 0, TINY,
                                       max_duration_s=CAP_S)
        assert Runner().run_one(spec).throughput == direct.throughput


class TestDedupAndStats:
    def test_duplicate_specs_execute_once(self):
        spec = best_case_spec(1, TINY)
        runner = Runner()
        results = runner.run([spec, spec, spec])
        assert len(results) == 1
        assert runner.stats.executed == 1
        assert runner.stats.deduped == 2

    def test_stats_accumulate_across_batches(self):
        runner = Runner()
        runner.run([best_case_spec(0, TINY)])
        runner.run([best_case_spec(2, TINY)])
        assert runner.stats.executed == 2
        assert runner.stats.per_mode == {"best_case": 2}
        assert runner.stats.summary().endswith("new cells executed: 2")

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Runner(jobs=0)


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        specs = [best_case_spec(0, TINY), best_case_spec(3, TINY)]
        first = Runner(cache=ResultCache(tmp_path))
        warm = first.run(specs)
        assert first.stats.executed == 2
        assert first.stats.cache_misses == 2

        second = Runner(cache=ResultCache(tmp_path))
        cached = second.run(specs)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 2
        assert second.stats.summary().endswith("new cells executed: 0")
        for spec in specs:
            assert cached[spec] == warm[spec]

    def test_cached_simulation_floats_identical(self, tmp_path):
        spec = tiny_cell("hemem", 0)
        live = Runner(cache=ResultCache(tmp_path)).run_one(spec)
        cached = Runner(cache=ResultCache(tmp_path)).run_one(spec)
        assert cached.throughput == live.throughput
        assert cached.tail_latencies_ns == live.tail_latencies_ns


class TestRepetition:
    def test_expand_seeds_keeps_base_then_derives(self):
        spec = tiny_cell("hemem", 0)
        copies = expand_seeds(spec, 3)
        assert copies[0] is spec
        seeds = [c.seed for c in copies]
        assert len(set(seeds)) == 3
        # Derived seeds are stable across calls (cache keys depend on it).
        assert [c.seed for c in expand_seeds(spec, 3)] == seeds
        with pytest.raises(ConfigurationError):
            expand_seeds(spec, 0)

    def test_consecutive_base_seeds_share_no_runs(self):
        # Regression: seed, seed+1, ... derivation made cell A's run 1
        # identical to cell B's run 0 whenever base seeds were
        # consecutive, correlating their error bars.
        cell_a = tiny_cell("hemem", 0)
        cell_b = cell_a.with_seed(cell_a.seed + 1)
        seeds_a = {c.seed for c in expand_seeds(cell_a, 3)}
        seeds_b = {c.seed for c in expand_seeds(cell_b, 3)}
        assert not seeds_a & seeds_b

    def test_run_grid_repeats_steady_but_not_best_case(self):
        cells = {
            "best": best_case_spec(1, TINY),
            "sim": tiny_cell("hemem", 1),
        }
        runner = Runner()
        grid = runner.run_grid(cells, n_runs=2)
        assert len(grid["best"].runs) == 1
        assert len(grid["sim"].runs) == 2
        lo, hi = grid["sim"].throughput_range
        assert lo <= grid["sim"].throughput <= hi

    def test_aggregate_statistics(self):
        def cell(throughput):
            return CellResult(
                mode="steady", throughput=throughput, converged=True,
                duration_s=4.0, tail_latencies_ns=(100.0, 150.0),
                tail_default_share=0.8, cpu_work={},
            )

        agg = aggregate([cell(10.0), cell(14.0)])
        assert agg.throughput == 12.0
        assert agg.throughput_range == (10.0, 14.0)
        assert agg.tail_latencies_ns == (100.0, 150.0)
        assert agg.spread == pytest.approx(4.0 / 12.0)
        with pytest.raises(ConfigurationError):
            aggregate([])
