"""Fault injection and the Runner's fault-tolerant fan-out.

Every injected fault is a pure function of (spec content hash, kind,
attempt), so these tests can *select* their cast — a cell that crashes
once, a cell that never faults — by scanning candidate specs' rolls,
then assert the recovered fleet is bit-identical to a clean serial run.
"""

import pytest

from repro.errors import ConfigurationError
from repro.exec.faults import (
    FAULT_ENV_VAR,
    HANG_SECONDS_ENV_VAR,
    SLOW_SECONDS_ENV_VAR,
    FaultPlan,
    fault_roll,
    parse_fault_plan,
    should_fault,
)
from repro.exec.runner import FleetError, Runner
from repro.experiments.common import ExperimentConfig, best_case_spec

SCALE = 0.03


def spec_with_seed(seed: int):
    """A distinct fast cell per seed (best-case cells run in ~70 ms)."""
    return best_case_spec(0, ExperimentConfig(scale=SCALE, seed=seed))


def find_specs(match, count, start=0):
    """The first ``count`` candidate specs whose hash satisfies ``match``."""
    found, seed = [], start
    while len(found) < count:
        spec = spec_with_seed(seed)
        if match(spec.content_hash()):
            found.append(spec)
        seed += 1
        assert seed < 10_000, "no matching specs in candidate pool"
    return found


def faults_at(kind, p, attempts):
    """Predicate: the given kind fires exactly on these attempt indices
    (and not on any other attempt in 0..max+1)."""
    attempts = set(attempts)
    span = range(max(attempts, default=0) + 2)

    def match(spec_hash):
        return all(
            (fault_roll(spec_hash, kind, a) < p) == (a in attempts)
            for a in span
        )

    return match


def clean_run(specs):
    """Serial, fault-free baseline results."""
    return Runner(jobs=1).run(specs)


class TestPlanParsing:
    def test_parses_kinds_and_probabilities(self):
        plan = parse_fault_plan("crash:0.2, hang:0.05,flaky:1")
        assert plan.probability("crash") == 0.2
        assert plan.probability("hang") == 0.05
        assert plan.probability("flaky") == 1.0
        assert plan.probability("kill") == 0.0
        assert bool(plan)

    def test_bare_kind_means_certainty(self):
        assert parse_fault_plan("crash").probability("crash") == 1.0

    def test_empty_plan_is_falsy(self):
        assert not parse_fault_plan("")
        assert not FaultPlan()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fault_plan("oops:0.5")

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fault_plan("crash:maybe")
        with pytest.raises(ConfigurationError):
            parse_fault_plan("crash:1.5")


class TestDeterministicRolls:
    def test_roll_is_stable_and_uniform_range(self):
        roll = fault_roll("abc", "crash", 0)
        assert roll == fault_roll("abc", "crash", 0)
        assert 0.0 <= roll < 1.0

    def test_roll_varies_by_attempt_kind_and_cell(self):
        rolls = {
            fault_roll("abc", "crash", 0),
            fault_roll("abc", "crash", 1),
            fault_roll("abc", "hang", 0),
            fault_roll("abd", "crash", 0),
        }
        assert len(rolls) == 4

    def test_flaky_never_fires_after_first_attempt(self):
        plan = parse_fault_plan("flaky:1.0")
        assert should_fault(plan, "abc", "flaky", 0)
        assert not should_fault(plan, "abc", "flaky", 1)


class TestSerialFaults:
    def test_flaky_cells_retry_to_clean_results(self, monkeypatch):
        specs = [spec_with_seed(s) for s in range(3)]
        baseline = clean_run(specs)
        monkeypatch.setenv(FAULT_ENV_VAR, "flaky:1.0")
        runner = Runner(jobs=1, retries=1)
        assert runner.run(specs) == baseline
        assert runner.stats.retried == 3
        assert runner.stats.failed == 0
        assert "retries: 3" in runner.stats.summary()

    def test_exhausted_retries_quarantine_with_structure(self,
                                                         monkeypatch):
        spec = spec_with_seed(0)
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:1.0")
        runner = Runner(jobs=1, retries=1, allow_failures=True)
        assert runner.run([spec]) == {}
        (failure,) = runner.failures
        assert failure.spec == spec
        assert failure.attempts == 2
        assert failure.error_type == "InjectedCrash"
        assert "injected crash" in failure.message
        assert "InjectedCrash" in failure.traceback
        assert runner.stats.failed == 1

    def test_fleet_error_after_whole_batch_resolves(self, monkeypatch):
        # One cell crashes on every attempt; one never crashes. The
        # innocent must complete (and survive in the cache/journal
        # story) before FleetError reports the quarantine.
        p = 0.5
        crasher = find_specs(faults_at("crash", p, {0, 1}), 1)[0]
        innocent = find_specs(faults_at("crash", p, {}), 1)[0]
        monkeypatch.setenv(FAULT_ENV_VAR, f"crash:{p}")
        runner = Runner(jobs=1, retries=1)
        with pytest.raises(FleetError) as err:
            runner.run([crasher, innocent])
        assert err.value.completed == 1
        assert [f.spec for f in err.value.failures] == [crasher]
        assert "failed after exhausting retries" in str(err.value)

    def test_repro_errors_fail_fast_without_retries(self, monkeypatch):
        # Deterministic bugs must not burn the retry budget.
        monkeypatch.setattr(
            "repro.exec.runner.execute_spec",
            lambda spec: (_ for _ in ()).throw(
                ConfigurationError("deterministic bug")),
        )
        runner = Runner(jobs=1, retries=3)
        with pytest.raises(ConfigurationError):
            runner.run([spec_with_seed(0)])
        assert runner.stats.retried == 0


class TestParallelFaults:
    def test_faulted_parallel_bit_identical_to_clean_serial(
            self, monkeypatch):
        specs = [spec_with_seed(s) for s in range(4)]
        baseline = clean_run(specs)
        monkeypatch.setenv(FAULT_ENV_VAR, "flaky:1.0")
        runner = Runner(jobs=2, retries=2)
        faulted = runner.run(specs)
        assert faulted == baseline
        assert runner.stats.retried == 4

    def test_broken_pool_respawns_and_recovers(self, monkeypatch):
        # The killer hard-exits its worker on attempt 0 only; innocents
        # never kill (including on the re-attempts they are charged for
        # being in flight during the breakage).
        p = 0.5
        killer = find_specs(faults_at("kill", p, {0}), 1)[0]
        innocents = find_specs(faults_at("kill", p, {}), 2)
        specs = [killer] + innocents
        baseline = clean_run(specs)
        monkeypatch.setenv(FAULT_ENV_VAR, f"kill:{p}")
        runner = Runner(jobs=2, retries=2)
        assert runner.run(specs) == baseline
        assert runner.stats.pool_respawns >= 1
        assert runner.stats.failed == 0

    def test_hung_cell_times_out_and_retries(self, monkeypatch):
        p = 0.5
        hanger = find_specs(faults_at("hang", p, {0}), 1)[0]
        innocents = find_specs(faults_at("hang", p, {}), 2)
        specs = [hanger] + innocents
        baseline = clean_run(specs)
        monkeypatch.setenv(FAULT_ENV_VAR, f"hang:{p}")
        monkeypatch.setenv(HANG_SECONDS_ENV_VAR, "60")
        runner = Runner(jobs=2, retries=1, cell_timeout_s=1.0)
        assert runner.run(specs) == baseline
        assert runner.stats.timeouts >= 1
        assert runner.stats.pool_respawns >= 1
        assert runner.stats.failed == 0

    def test_slow_first_cell_does_not_head_of_line_block(
            self, monkeypatch):
        # Regression: pool.map consumed results in submission order, so
        # a slow first cell froze progress/metrics until it finished
        # even as later cells completed. With completion-order
        # consumption the fast cells report first.
        p = 0.5
        slow = find_specs(faults_at("slow", p, {0}), 1)[0]
        fast = find_specs(faults_at("slow", p, {}), 3)
        monkeypatch.setenv(FAULT_ENV_VAR, f"slow:{p}")
        monkeypatch.setenv(SLOW_SECONDS_ENV_VAR, "1.5")
        notes = []
        runner = Runner(jobs=2, progress=notes.append)
        runner.run([slow] + fast)
        completions = [n for n in notes if n.startswith("[")]
        assert len(completions) == 4
        assert slow.describe() not in completions[0]
        assert slow.describe() in completions[-1]


class TestRunnerValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            Runner(retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            Runner(retry_backoff_s=-0.1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            Runner(cell_timeout_s=0.0)
