"""Result cache round-trips, invalidation, and corruption handling."""

import json

from repro.exec import cache as cache_mod
from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.result import CellResult, TraceSeries
from repro.exec.spec import MachineSpec, RunSpec, WorkloadSpec


def make_spec(seed: int = 7) -> RunSpec:
    return RunSpec(
        system="hemem",
        workload=WorkloadSpec.make("gups", scale=0.0625, seed=seed),
        machine=MachineSpec(scale=0.0625),
        seed=seed,
        max_duration_s=5.0,
    )


def make_result() -> CellResult:
    return CellResult(
        mode="steady",
        throughput=64.25,
        converged=True,
        duration_s=5.0,
        tail_latencies_ns=(92.5, 141.25),
        tail_default_share=0.85,
        cpu_work={"plans": 500.0},
    )


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, make_result())
        got = cache.get(spec)
        assert got == make_result()
        assert len(cache) == 1

    def test_trace_series_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        series = TraceSeries(
            times_s=(0.0, 1.0), throughput=(10.0, 11.0),
            migration_bytes=(0.0, 4096.0),
            quantum_times_s=(0.01, 0.02), quantum_throughput=(9.9, 10.1),
        )
        result = CellResult(
            mode="trace", throughput=10.5, converged=None,
            duration_s=2.0, tail_latencies_ns=(90.0, 140.0),
            tail_default_share=0.5, cpu_work={}, series=series,
        )
        cache.put(spec, result)
        assert cache.get(spec) == result

    def test_floats_are_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        value = 64.15041440451904  # repr round-trip must be lossless
        cache.put(spec, CellResult(
            mode="steady", throughput=value, converged=True,
            duration_s=5.0, tail_latencies_ns=(), tail_default_share=0.0,
            cpu_work={},
        ))
        assert cache.get(spec).throughput == value


class TestMisses:
    def test_absent_entry_misses(self, tmp_path):
        assert ResultCache(tmp_path).get(make_spec()) is None

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_spec(seed=7), make_result())
        assert cache.get(make_spec(seed=8)) is None

    def test_corrupt_entry_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, make_result())
        cache.path_for(spec).write_text("{ not json")
        assert cache.get(spec) is None

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, make_result())
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION",
                            cache_mod.CACHE_SCHEMA_VERSION + 1)
        assert cache.get(spec) is None

    def test_hash_mismatch_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, make_result())
        payload = json.loads(path.read_text())
        payload["spec_hash"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None


class TestHousekeeping:
    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_spec(7), make_result())
        cache.put(make_spec(8), make_result())
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get(make_spec(7)) is None

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV_VAR, str(tmp_path))
        assert default_cache_dir() == tmp_path
        assert ResultCache().root == tmp_path

    def test_entries_fan_out_by_hash_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, make_result())
        key = spec.content_hash()
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"


class TestStaleTmpSweep:
    """A SIGKILL'd worker dies between mkstemp and os.replace: the
    BaseException cleanup in ``put`` never runs and the ``*.tmp``
    orphan used to live forever."""

    @staticmethod
    def orphan(tmp_path, age_s: float):
        import os
        import time

        bucket = tmp_path / "ab"
        bucket.mkdir(parents=True, exist_ok=True)
        orphan = bucket / "tmp_killed.tmp"
        orphan.write_text("{partial")
        stamp = time.time() - age_s
        os.utime(orphan, (stamp, stamp))
        return orphan

    def test_stale_orphan_swept_on_init(self, tmp_path):
        orphan = self.orphan(tmp_path, age_s=7200.0)
        cache = ResultCache(tmp_path)
        assert not orphan.exists()
        # Real entries are untouched.
        spec = make_spec()
        cache.put(spec, make_result())
        assert ResultCache(tmp_path).get(spec) == make_result()

    def test_fresh_tmp_left_for_live_writers(self, tmp_path):
        orphan = self.orphan(tmp_path, age_s=1.0)
        ResultCache(tmp_path)
        assert orphan.exists()

    def test_sweep_reports_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.orphan(tmp_path, age_s=7200.0)
        assert cache.sweep_stale_tmp() == 1
        assert cache.sweep_stale_tmp() == 0
