"""RunSpec value semantics: hashing, round-trips, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.spec import (
    BEST_CASE_SYSTEM,
    MachineSpec,
    RunSpec,
    WorkloadSpec,
    static_contention,
)


def make_spec(**overrides) -> RunSpec:
    kwargs = dict(
        system="hemem",
        workload=WorkloadSpec.make("gups", scale=0.0625, seed=7),
        machine=MachineSpec(scale=0.0625),
        mode="steady",
        contention=static_contention(1),
        seed=7,
        max_duration_s=5.0,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestHashing:
    def test_kwarg_order_does_not_matter(self):
        a = WorkloadSpec.make("gups", scale=0.0625, seed=7, n_cores=5)
        b = WorkloadSpec.make("gups", n_cores=5, seed=7, scale=0.0625)
        assert a == b
        assert (make_spec(workload=a).content_hash()
                == make_spec(workload=b).content_hash())

    def test_equal_specs_hash_equal(self):
        assert make_spec() == make_spec()
        assert make_spec().content_hash() == make_spec().content_hash()

    @pytest.mark.parametrize("change", [
        {"system": "hemem+colloid"},
        {"seed": 8},
        {"contention": static_contention(2)},
        {"max_duration_s": 6.0},
        {"quantum_ms": 20.0},
        {"machine": MachineSpec(scale=0.0625, alt_latency_ratio=2.7)},
        {"system_kwargs": (("delta", 0.05),)},
    ])
    def test_any_field_change_changes_hash(self, change):
        assert make_spec(**change).content_hash() != (
            make_spec().content_hash()
        )

    def test_hash_is_stable_hex_sha256(self):
        digest = make_spec().content_hash()
        assert len(digest) == 64
        int(digest, 16)  # valid hex


class TestRoundTrip:
    def test_dict_round_trip_preserves_identity(self):
        spec = make_spec(
            system_kwargs=(("delta", 0.05), ("epsilon", 0.01)),
            machine=MachineSpec(scale=0.5, default_tier_ws_divisor=3),
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_trace_round_trip(self):
        spec = make_spec(mode="trace", max_duration_s=None,
                         duration_s=12.0,
                         contention=((0.0, 0), (5.0, 3)))
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_workload_with_shifts_round_trips(self):
        w = WorkloadSpec.make("gups", hot_shift_times_s=(9.0,),
                              scale=0.1, seed=3)
        assert WorkloadSpec.from_dict(w.to_dict()) == w


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(mode="warp")

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.make("fortran")

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.make("gups", sizes=[1, 2])

    def test_shifts_only_for_gups(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.make("silo", hot_shift_times_s=(5.0,))

    def test_contention_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            make_spec(contention=((1.0, 3),))

    def test_contention_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            make_spec(contention=((0.0, 0), (9.0, 3), (4.0, 1)))

    def test_steady_needs_duration_cap(self):
        with pytest.raises(ConfigurationError):
            make_spec(max_duration_s=None)

    def test_trace_needs_duration(self):
        with pytest.raises(ConfigurationError):
            make_spec(mode="trace", max_duration_s=None)


class TestDerivedViews:
    def test_single_entry_contention_is_plain_int(self):
        assert make_spec().contention_input() == 1

    def test_schedule_becomes_step_function(self):
        level = make_spec(
            contention=((0.0, 0), (10.0, 3))
        ).contention_input()
        assert level(0.0) == 0
        assert level(9.99) == 0
        assert level(10.0) == 3
        assert level(25.0) == 3

    def test_min_duration_floor(self):
        assert make_spec(max_duration_s=30.0).resolved_min_duration_s() == (
            21.0
        )
        assert make_spec(max_duration_s=2.0).resolved_min_duration_s() == (
            3.0
        )
        assert make_spec(min_duration_s=1.5).resolved_min_duration_s() == (
            1.5
        )

    def test_with_seed(self):
        assert make_spec().with_seed(99).seed == 99
        assert make_spec().with_seed(99) != make_spec()

    def test_repeatable_only_for_steady(self):
        assert make_spec().repeatable
        best = make_spec(system=BEST_CASE_SYSTEM, mode="best_case",
                         max_duration_s=None)
        assert not best.repeatable


class TestTenantCellSpec:
    def make_tenant(self, name="a", **overrides):
        from repro.exec.spec import TenantCellSpec

        kwargs = dict(
            workload=WorkloadSpec.make("gups", scale=0.03, seed=1),
            system="hemem+colloid",
        )
        kwargs.update(overrides)
        return TenantCellSpec.make(name, **kwargs)

    def make_colocated(self, tenants=None):
        from repro.exec.spec import COLOCATION_SYSTEM

        if tenants is None:
            tenants = (self.make_tenant("a"),
                       self.make_tenant("b", system="hemem"))
        return make_spec(system=COLOCATION_SYSTEM,
                         tenants=tuple(tenants))

    def test_round_trips(self):
        from repro.exec.spec import TenantCellSpec

        tenant = self.make_tenant(weight=2.0, n_bins=7)
        again = TenantCellSpec.from_dict(tenant.to_dict())
        assert again == tenant

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_tenant(name="")
        with pytest.raises(ConfigurationError):
            self.make_tenant(system="")
        with pytest.raises(ConfigurationError):
            self.make_tenant(weight=0.0)
        with pytest.raises(ConfigurationError):
            self.make_tenant(weight=-1.0)

    def test_runspec_rejects_duplicate_tenant_names(self):
        with pytest.raises(ConfigurationError, match="unique"):
            self.make_colocated(tenants=(self.make_tenant("a"),
                                         self.make_tenant("a")))

    def test_runspec_rejects_best_case_with_tenants(self):
        with pytest.raises(ConfigurationError, match="best.case"):
            make_spec(system=BEST_CASE_SYSTEM, mode="best_case",
                      max_duration_s=None,
                      tenants=(self.make_tenant("a"),))

    def test_colocated_spec_round_trips(self):
        spec = self.make_colocated()
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_describe_names_tenants(self):
        assert "[a+b]" in self.make_colocated().describe()


class TestTenantHashCompatibility:
    """Colocation must not disturb any pre-existing spec hash: the
    content hash keys the on-disk result cache and the golden
    fixtures."""

    def test_single_tenant_dict_omits_tenants_key(self):
        assert "tenants" not in make_spec().to_dict()

    def test_single_tenant_hash_uses_pre_colocation_schema(self):
        import json

        from repro.exec.spec import _SINGLE_TENANT_SCHEMA_VERSION

        spec = make_spec()
        payload = {
            "schema": _SINGLE_TENANT_SCHEMA_VERSION,
            "spec": spec.to_dict(),
        }
        import hashlib

        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode()
        ).hexdigest()
        assert spec.content_hash() == expected

    def test_known_single_tenant_hash_is_stable(self):
        # Pinned from the pre-colocation schema: changing it silently
        # invalidates every cached result and golden fixture.
        assert make_spec().content_hash() == (
            "5d66ee38ec8e43147fb372fa97930c33"
            "ad20efc9517aa363e36ba86facf9ea21")

    def test_colocated_spec_hashes_differently(self):
        from repro.exec.spec import COLOCATION_SYSTEM, TenantCellSpec

        tenant = TenantCellSpec.make(
            "a", WorkloadSpec.make("gups", scale=0.03, seed=1), "hemem")
        spec = make_spec(system=COLOCATION_SYSTEM, tenants=(tenant,))
        assert spec.content_hash() != make_spec().content_hash()
        assert "tenants" in spec.to_dict()
