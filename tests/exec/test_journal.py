"""Fleet journal durability, resume, and fidelity checks."""

import json

import pytest

from repro.check.roundtrip import check_journal_fidelity
from repro.errors import InvariantViolation
from repro.exec.journal import JOURNAL_SCHEMA_VERSION, FleetJournal
from repro.exec.runner import Runner
from repro.experiments.common import ExperimentConfig, best_case_spec

TINY = ExperimentConfig(scale=0.03, seed=7)


def specs(n):
    return [best_case_spec(i, TINY) for i in range(n)]


class TestRoundTrip:
    def test_record_then_resume_reads_back_equal(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(2)
        results = Runner(journal=FleetJournal(path)).run(batch)

        resumed = FleetJournal(path, resume=True)
        assert len(resumed) == 2
        for spec in batch:
            assert resumed.lookup(spec) == results[spec]

    def test_lookup_misses_without_resume(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(1)
        Runner(journal=FleetJournal(path)).run(batch)
        # resume=False: the file is a write-only crash log.
        assert FleetJournal(path).lookup(batch[0]) is None

    def test_missing_file_loads_empty(self, tmp_path):
        journal = FleetJournal(tmp_path / "absent.jsonl", resume=True)
        assert len(journal) == 0
        assert journal.skipped_lines == 0


class TestCorruptionTolerance:
    def test_truncated_final_line_skipped(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(2)
        Runner(journal=FleetJournal(path)).run(batch)
        with path.open("a") as handle:
            # A SIGKILL mid-append: valid prefix, no closing brace.
            handle.write('{"journal_schema": 1, "spec_hash": "dead')
        journal = FleetJournal(path, resume=True)
        assert len(journal) == 2
        assert journal.skipped_lines == 1

    def test_schema_mismatch_skipped(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        path.write_text(json.dumps({
            "journal_schema": JOURNAL_SCHEMA_VERSION + 1,
            "spec_hash": "abc",
            "result": {},
        }) + "\n")
        journal = FleetJournal(path, resume=True)
        assert len(journal) == 0
        assert journal.skipped_lines == 1


class TestRunnerResume:
    def test_resume_executes_only_missing_cells(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(3)
        baseline = Runner(jobs=1).run(batch)

        # Simulate a fleet killed after one completion: only the first
        # cell made it into the journal.
        partial = FleetJournal(path)
        partial.record(batch[0], baseline[batch[0]])
        partial.close()

        runner = Runner(journal=FleetJournal(path, resume=True))
        resumed = runner.run(batch)
        assert resumed == baseline
        assert runner.stats.journal_hits == 1
        assert runner.stats.executed == 2
        assert "1 journal hits" in runner.stats.summary()
        assert runner.stats.summary().endswith("new cells executed: 2")

        # The resumed run journaled the cells it executed, so a second
        # resume executes nothing.
        again = Runner(journal=FleetJournal(path, resume=True))
        assert again.run(batch) == baseline
        assert again.stats.journal_hits == 3
        assert again.stats.executed == 0

    def test_full_journal_resume_executes_nothing(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(2)
        first = Runner(journal=FleetJournal(path))
        baseline = first.run(batch)
        runner = Runner(journal=FleetJournal(path, resume=True))
        assert runner.run(batch) == baseline
        assert runner.stats.executed == 0
        assert runner.stats.journal_hits == 2


class TestFidelityCheck:
    def test_recorded_entry_passes(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        batch = specs(1)
        journal = FleetJournal(path)
        result = Runner(journal=journal).run(batch)[batch[0]]
        check_journal_fidelity(journal, batch[0], result)

    def test_missing_entry_raises(self, tmp_path):
        journal = FleetJournal(tmp_path / "fleet.jsonl")
        batch = specs(1)
        result = Runner(jobs=1).run(batch)[batch[0]]
        with pytest.raises(InvariantViolation):
            check_journal_fidelity(journal, batch[0], result)
