"""Tests for cooling counters and the MEMTIS capacity threshold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tracking.cooling import CoolingCounters
from repro.tracking.histogram import capacity_hot_threshold


class TestCoolingCounters:
    def test_counts_accumulate(self):
        counters = CoolingCounters(4, cooling_threshold=100)
        counters.add_samples(np.array([1, 2, 3, 0]))
        counters.add_samples(np.array([1, 0, 0, 0]))
        assert list(counters.counts) == [2, 2, 3, 0]

    def test_cooling_halves_at_threshold(self):
        counters = CoolingCounters(3, cooling_threshold=10)
        counters.add_samples(np.array([10, 4, 0]))
        assert counters.counts[0] == pytest.approx(5.0)
        assert counters.counts[1] == pytest.approx(2.0)
        assert counters.coolings == 1

    def test_cooling_repeats_until_under_threshold(self):
        counters = CoolingCounters(1, cooling_threshold=4)
        counters.add_samples(np.array([40]))
        assert counters.counts[0] < 4
        assert counters.coolings >= 3

    def test_counts_bounded_by_threshold_invariant(self):
        rng = np.random.default_rng(0)
        counters = CoolingCounters(50, cooling_threshold=18)
        for __ in range(100):
            counters.add_samples(rng.poisson(2.0, size=50))
            assert counters.counts.max() < 18

    def test_probabilities_normalized(self):
        counters = CoolingCounters(4, cooling_threshold=100)
        counters.add_samples(np.array([3, 1, 0, 0]))
        probs = counters.access_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.75)

    def test_empty_counters_uniform(self):
        counters = CoolingCounters(5)
        assert (counters.access_probabilities() == 0.2).all()

    def test_reset(self):
        counters = CoolingCounters(3, cooling_threshold=10)
        counters.add_samples(np.array([5, 5, 5]))
        counters.reset()
        assert counters.counts.sum() == 0
        assert counters.coolings == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            CoolingCounters(0)
        with pytest.raises(ConfigurationError):
            CoolingCounters(5, cooling_threshold=1)

    def test_rejects_shape_mismatch(self):
        counters = CoolingCounters(3)
        with pytest.raises(ConfigurationError):
            counters.add_samples(np.array([1, 2]))


class TestCapacityHotThreshold:
    def test_everything_fits_threshold_zero(self):
        counts = np.array([5.0, 3.0, 1.0])
        sizes = np.full(3, 100)
        assert capacity_hot_threshold(counts, sizes, 1000) == 0.0

    def test_threshold_selects_hottest_that_fit(self):
        counts = np.array([5.0, 3.0, 1.0, 2.0])
        sizes = np.full(4, 100)
        threshold = capacity_hot_threshold(counts, sizes, 250)
        hot = counts >= threshold
        # The two hottest pages (counts 5 and 3) fit in 250 bytes.
        assert hot[0] and hot[1]
        assert not hot[2]

    def test_single_page_capacity(self):
        counts = np.array([5.0, 3.0])
        sizes = np.full(2, 100)
        threshold = capacity_hot_threshold(counts, sizes, 100)
        assert (counts >= threshold).sum() == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            capacity_hot_threshold(np.array([1.0]), np.array([1, 2]), 100)
        with pytest.raises(ConfigurationError):
            capacity_hot_threshold(np.array([1.0]), np.array([100]), 0)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=60, deadline=None)
    def test_hot_set_above_strict_threshold_fits(self, raw_counts, capacity):
        """Pages with counts strictly above the threshold always fit."""
        counts = np.array(raw_counts)
        sizes = np.full(len(counts), 100, dtype=np.int64)
        threshold = capacity_hot_threshold(counts, sizes, capacity)
        if np.isinf(threshold):
            return
        strictly_hot = counts > threshold
        assert sizes[strictly_hot].sum() <= capacity
