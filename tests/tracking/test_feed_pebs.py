"""Tests for the access feed and PEBS samplers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tracking.feed import AccessFeed
from repro.tracking.pebs import AdaptivePebsSampler, PebsSampler


def make_feed(n_pages=100, rate=1.0, quantum=1e7, seed=0,
              hot_frac=0.1, hot_prob=0.9):
    rng = np.random.default_rng(seed)
    probs = np.full(n_pages, (1 - hot_prob) / n_pages)
    n_hot = max(1, int(hot_frac * n_pages))
    probs[:n_hot] += hot_prob / n_hot
    probs = probs / probs.sum()
    return AccessFeed(probs, rate, quantum, rng)


class TestAccessFeed:
    def test_total_accesses(self):
        feed = make_feed(rate=0.5, quantum=1e6)
        assert feed.total_accesses == 500_000

    def test_sample_counts_follow_distribution(self):
        feed = make_feed(seed=1)
        counts = feed.pebs_counts(sample_period=100)
        assert counts.sum() == feed.total_accesses // 100
        # Hot pages (first 10%) should dominate the samples.
        hot_share = counts[:10].sum() / counts.sum()
        assert hot_share == pytest.approx(0.9, abs=0.03)

    def test_longer_period_fewer_samples(self):
        few = make_feed(seed=2).pebs_counts(sample_period=1000).sum()
        many = make_feed(seed=2).pebs_counts(sample_period=100).sum()
        assert many == 10 * few

    def test_max_samples_cap(self):
        feed = make_feed()
        counts = feed.pebs_counts(sample_period=10, max_samples=50)
        assert counts.sum() == 50

    def test_zero_rate_yields_no_samples(self):
        feed = make_feed(rate=0.0)
        assert feed.pebs_counts(sample_period=10).sum() == 0

    def test_page_access_rates(self):
        feed = make_feed(rate=2.0)
        rates = feed.page_access_rates()
        assert rates.sum() == pytest.approx(2.0)

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            AccessFeed(np.array([1.0]), -1.0, 1e6, rng)
        with pytest.raises(ConfigurationError):
            AccessFeed(np.array([1.0]), 1.0, 0.0, rng)
        feed = make_feed()
        with pytest.raises(ConfigurationError):
            feed.pebs_counts(sample_period=0)


class TestPebsSampler:
    def test_fixed_period_accumulates_totals(self):
        sampler = PebsSampler(sample_period=100)
        feed = make_feed()
        counts = sampler.collect(feed)
        assert sampler.total_samples == counts.sum()

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PebsSampler(sample_period=0)


class TestAdaptivePebsSampler:
    def test_period_grows_when_oversampling(self):
        sampler = AdaptivePebsSampler(sample_period=19,
                                      target_samples_per_quantum=100)
        feed = make_feed(rate=1.0)  # 1e7 accesses -> huge sample count
        sampler.collect(feed)
        assert sampler.sample_period > 19

    def test_period_shrinks_when_undersampling(self):
        sampler = AdaptivePebsSampler(sample_period=10_000,
                                      target_samples_per_quantum=5000)
        feed = make_feed(rate=0.1, quantum=1e6)  # few accesses
        sampler.collect(feed)
        assert sampler.sample_period < 10_000

    def test_period_stays_within_bounds(self):
        sampler = AdaptivePebsSampler(sample_period=50, min_period=19,
                                      max_period=400,
                                      target_samples_per_quantum=10)
        for seed in range(10):
            sampler.collect(make_feed(seed=seed))
        assert 19 <= sampler.sample_period <= 400

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptivePebsSampler(min_period=100, max_period=10)
        with pytest.raises(ConfigurationError):
            AdaptivePebsSampler(target_samples_per_quantum=0)
