"""Tests for the TPP hint-fault tracker."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tracking.hintfaults import HintFaultTracker


def make_tracker(n_pages=100, scan=10, seed=0):
    return HintFaultTracker(n_pages, scan,
                            rng=np.random.default_rng(seed))


def drive(tracker, rates, quanta, quantum_ns=1e7):
    """Run ``quanta`` quanta, returning all fault events."""
    events = []
    for q in range(quanta):
        events.extend(
            tracker.quantum(rates, now_ns=q * quantum_ns,
                            quantum_ns=quantum_ns)
        )
    return events


class TestScanning:
    def test_scanner_marks_round_robin(self):
        tracker = make_tracker(n_pages=10, scan=4)
        rates = np.zeros(10)
        tracker.quantum(rates, 0.0, 1e6)
        assert set(tracker.marked_pages) == {0, 1, 2, 3}
        tracker.quantum(rates, 1e6, 1e6)
        assert set(tracker.marked_pages) == {0, 1, 2, 3, 4, 5, 6, 7}

    def test_scan_wraps_around(self):
        tracker = make_tracker(n_pages=6, scan=4)
        rates = np.zeros(6)
        tracker.quantum(rates, 0.0, 1e6)
        tracker.quantum(rates, 1e6, 1e6)
        assert set(tracker.marked_pages) == set(range(6))

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            HintFaultTracker(0, 1, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            HintFaultTracker(10, 0, np.random.default_rng(0))

    def test_rejects_rate_shape_mismatch(self):
        tracker = make_tracker(n_pages=10)
        with pytest.raises(ConfigurationError):
            tracker.quantum(np.zeros(5), 0.0, 1e6)


class TestFaultStatistics:
    def test_unaccessed_pages_never_fault(self):
        tracker = make_tracker(n_pages=20, scan=20)
        events = drive(tracker, np.zeros(20), quanta=10)
        assert events == []

    def test_hot_pages_fault_quickly(self):
        """Mean time-to-fault approximates 1/(p*R) — §4.3's relation."""
        n = 50
        tracker = make_tracker(n_pages=n, scan=n, seed=3)
        rates = np.full(n, 1e-4)  # 1/(rate) = 10 us expected ttf
        events = drive(tracker, rates, quanta=30, quantum_ns=1e6)
        assert len(events) > 100
        mean_ttf = np.mean([e.time_to_fault_ns for e in events])
        assert mean_ttf == pytest.approx(1e4, rel=0.25)

    def test_hotter_pages_fault_faster(self):
        n = 40
        tracker = make_tracker(n_pages=n, scan=n, seed=4)
        rates = np.concatenate([np.full(20, 1e-3), np.full(20, 1e-5)])
        events = drive(tracker, rates, quanta=50, quantum_ns=1e6)
        hot_ttf = [e.time_to_fault_ns for e in events if e.page < 20]
        cold_ttf = [e.time_to_fault_ns for e in events if e.page >= 20]
        assert hot_ttf and cold_ttf
        assert np.mean(hot_ttf) < np.mean(cold_ttf) / 10

    def test_fault_clears_mark_until_rescanned(self):
        tracker = make_tracker(n_pages=4, scan=4, seed=5)
        rates = np.full(4, 1e-2)  # faults fire almost immediately
        tracker.quantum(rates, 0.0, 1e6)          # scan all
        events = tracker.quantum(rates, 1e6, 1e6)  # all fault, rescan
        assert len(events) == 4
        # After faulting, pages were re-marked by the same quantum's scan.
        assert len(tracker.marked_pages) == 4

    def test_faults_are_reproducible(self):
        a = drive(make_tracker(seed=9), np.full(100, 1e-4), quanta=20)
        b = drive(make_tracker(seed=9), np.full(100, 1e-4), quanta=20)
        assert [(e.page, e.time_to_fault_ns) for e in a] == [
            (e.page, e.time_to_fault_ns) for e in b
        ]
