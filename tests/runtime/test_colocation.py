"""Tests for the multi-tenant colocated loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec.factories import make_system
from repro.runtime.colocation import ColocatedLoop, TenantSpec
from repro.runtime.loop import SimulationLoop
from repro.tiering.static import StaticPlacementSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE

HALF = FAST_SCALE / 2.0


def make_tenants(systems=("hemem+colloid", "hemem+colloid")):
    return [
        TenantSpec(
            name=f"t{i}",
            workload=GupsWorkload(scale=HALF, seed=4 + i),
            system=make_system(name),
        )
        for i, name in enumerate(systems)
    ]


def make_coloc(small_machine, tenants=None, **kwargs):
    if tenants is None:
        tenants = make_tenants()
    return ColocatedLoop(
        machine=small_machine, tenants=tenants, seed=4, **kwargs
    )


class TestConstruction:
    def test_needs_at_least_one_tenant(self, small_machine):
        with pytest.raises(ConfigurationError, match="at least one"):
            ColocatedLoop(machine=small_machine, tenants=[])

    def test_rejects_duplicate_names(self, small_machine):
        tenants = make_tenants()
        dup = TenantSpec(name="t0", workload=tenants[1].workload,
                         system=tenants[1].system)
        with pytest.raises(ConfigurationError, match="unique"):
            ColocatedLoop(machine=small_machine,
                          tenants=[tenants[0], dup])

    def test_rejects_shared_system_instances(self, small_machine):
        system = make_system("hemem")
        tenants = [
            TenantSpec(name=f"t{i}",
                       workload=GupsWorkload(scale=HALF, seed=4 + i),
                       system=system)
            for i in range(2)
        ]
        with pytest.raises(ConfigurationError, match="share"):
            ColocatedLoop(machine=small_machine, tenants=tenants)

    def test_rejects_bad_quantum(self, small_machine):
        with pytest.raises(ConfigurationError, match="quantum"):
            make_coloc(small_machine, quantum_ms=0)

    def test_grants_cover_working_sets_within_capacity(
            self, small_machine):
        loop = make_coloc(small_machine)
        capacities = [t.capacity_bytes for t in small_machine.tiers]
        grants = loop.tenant_grants
        for tier in range(len(capacities)):
            assert (sum(g[tier] for g in grants.values())
                    <= capacities[tier])
        for tenant in loop._tenants:
            workload = tenant.spec.workload
            assert (sum(tenant.grant)
                    >= workload.n_pages * workload.page_bytes)


class TestStep:
    def test_aggregate_record_and_per_tenant_series(self, small_machine):
        loop = make_coloc(small_machine)
        record = loop.step()
        assert record.time_s == 0.0
        assert record.throughput > 0
        assert len(loop.metrics) == 1
        assert set(loop.tenant_metrics) == {"t0", "t1"}
        for metrics in loop.tenant_metrics.values():
            assert len(metrics) == 1
            assert metrics.throughput[0] > 0

    def test_aggregate_throughput_sums_tenants(self, small_machine):
        loop = make_coloc(small_machine)
        loop.run(duration_s=0.2)
        total = loop.metrics.throughput
        parts = sum(m.throughput for m in loop.tenant_metrics.values())
        np.testing.assert_allclose(total, parts, rtol=1e-9)

    def test_tenants_share_one_equilibrium(self, small_machine):
        loop = make_coloc(small_machine)
        loop.run(duration_s=0.1)
        # CPU-observed latencies differ per tenant (each has its own
        # noise stream) but track the same machine state.
        series = [m.latencies_ns for m in loop.tenant_metrics.values()]
        np.testing.assert_allclose(series[0], series[1], rtol=0.2)

    def test_migrations_touch_only_own_pages(self, small_machine):
        loop = make_coloc(small_machine)
        loop.run(duration_s=0.5)
        for tenant in loop._tenants:
            n_pages = tenant.spec.workload.n_pages
            assert len(tenant.placement.pages.tier) == n_pages

    def test_contention_drops_aggregate_throughput(self, small_machine):
        quiet = make_coloc(small_machine).run(0.2)
        loud = make_coloc(small_machine, contention=3).run(0.2)
        assert loud.throughput.mean() < quiet.throughput.mean()


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self, small_machine):
        a = make_coloc(small_machine).run(0.3)
        b = make_coloc(small_machine).run(0.3)
        np.testing.assert_array_equal(a.throughput, b.throughput)
        np.testing.assert_array_equal(a.latencies_ns, b.latencies_ns)

    def test_tenant_streams_decorrelated_from_seed(self, small_machine):
        a = make_coloc(small_machine, contention=2).run(0.5)
        b = ColocatedLoop(machine=small_machine, tenants=make_tenants(),
                          seed=5, contention=2).run(0.5)
        assert not np.array_equal(a.throughput, b.throughput)


class TestDuckCompatibility:
    def test_run_steady_state_drives_colocated_loop(self, small_machine):
        from repro.runtime.experiment import run_steady_state

        result = run_steady_state(make_coloc(small_machine),
                                  min_duration_s=0.2, max_duration_s=1.0)
        assert result.throughput > 0
        assert result.duration_s <= 1.0

    def test_introspection_properties(self, small_machine):
        loop = make_coloc(small_machine, tenants=make_tenants(
            ("hemem", "hemem+colloid")))
        assert loop.tenant_names == ["t0", "t1"]
        assert loop.tenant_systems["t0"].name == "hemem"
        assert set(loop.tenant_placements) == {"t0", "t1"}


class TestContentionValidation:
    """Contention-schedule returns are hostile input (satellite:
    validated on both loops)."""

    @pytest.mark.parametrize("bad", [None, -1, 1.5, float("nan"),
                                     float("inf"), "x"])
    def test_colocated_loop_rejects_bad_callable_return(
            self, small_machine, bad):
        loop = make_coloc(small_machine, contention=lambda t: bad)
        with pytest.raises(ConfigurationError, match="contention"):
            loop.step()

    @pytest.mark.parametrize("bad", [None, -1, 1.5, float("nan"),
                                     float("inf"), "x"])
    def test_simulation_loop_rejects_bad_callable_return(
            self, small_machine, bad):
        loop = SimulationLoop(
            machine=small_machine,
            workload=GupsWorkload(scale=FAST_SCALE, seed=4),
            system=StaticPlacementSystem(),
            contention=lambda t: bad,
            seed=4,
        )
        with pytest.raises(ConfigurationError, match="contention"):
            loop.step()

    def test_bad_constant_rejected_at_construction(self, small_machine):
        with pytest.raises(ConfigurationError, match="contention"):
            make_coloc(small_machine, contention=-2)

    def test_integral_float_return_accepted(self, small_machine):
        loop = make_coloc(small_machine, contention=lambda t: 2.0)
        record = loop.step()
        assert record.antagonist_intensity == 2
