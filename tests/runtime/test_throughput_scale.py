"""Integration of TieringSystem.throughput_scale with the loop."""


from repro.runtime.loop import SimulationLoop
from repro.tiering.static import StaticPlacementSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


class HalfSpeedSystem(StaticPlacementSystem):
    """Static placement with a fixed 50% effective-parallelism penalty."""

    name = "half-speed"

    def throughput_scale(self) -> float:
        return 0.5


class TestThroughputScale:
    def test_penalty_reduces_throughput_proportionally(self,
                                                       small_machine):
        def run(system):
            workload = GupsWorkload(scale=FAST_SCALE, seed=3)
            loop = SimulationLoop(machine=small_machine,
                                  workload=workload, system=system,
                                  seed=3)
            return loop.run(duration_s=0.5).throughput.mean()

        full = run(StaticPlacementSystem())
        half = run(HalfSpeedSystem())
        # Halving MLP halves throughput only if latency stayed fixed;
        # the lighter load also lowers latency, so the ratio lands
        # between 0.5 and 1.
        assert 0.5 <= half / full < 0.95

    def test_memtis_split_penalty_visible_in_loop(self, small_machine):
        from repro.tiering.memtis import MemtisSystem

        def run(enable):
            workload = GupsWorkload(scale=FAST_SCALE, seed=3)
            loop = SimulationLoop(
                machine=small_machine, workload=workload,
                system=MemtisSystem(enable_splitting=enable,
                                    split_warmup_s=0.5,
                                    coalesce_pages_per_s=0.0),
                seed=3,
            )
            metrics = loop.run(duration_s=6.0)
            return metrics.throughput[-100:].mean()

        with_split = run(True)
        without_split = run(False)
        assert with_split < without_split * 0.99
