"""Edge-case tests for MetricsRecorder and the CSV/JSON exporters."""

import csv
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.export import to_csv, to_json
from repro.runtime.metrics import MetricsRecorder, QuantumRecord


def make_record(i=0, n_tiers=2):
    """A synthetic record built from numpy scalars, as the loop produces."""
    return QuantumRecord(
        time_s=np.float64(i * 0.01),
        throughput=np.float64(50.0 + i),
        latencies_ns=np.linspace(100.0, 300.0, n_tiers),
        p_true=np.float64(0.5),
        p_measured=np.float64(0.6),
        app_tier_bandwidth=np.full(n_tiers, 10.0),
        migration_bytes=np.int64(4096),
        antagonist_intensity=np.int64(2),
    )


def make_recorder(n=3, n_tiers=2):
    recorder = MetricsRecorder()
    for i in range(n):
        recorder.record(make_record(i, n_tiers))
    return recorder


class TestSteadyStateThroughput:
    @pytest.mark.parametrize("bad", [0.0, -0.25, 1.5, -1.0])
    def test_rejects_out_of_range_tail_fraction(self, bad):
        recorder = make_recorder()
        with pytest.raises(ConfigurationError):
            recorder.steady_state_throughput(tail_fraction=bad)

    def test_full_tail_averages_everything(self):
        recorder = make_recorder(4)
        assert recorder.steady_state_throughput(tail_fraction=1.0) == (
            pytest.approx(np.mean([50.0, 51.0, 52.0, 53.0]))
        )

    def test_single_record(self):
        recorder = make_recorder(1)
        assert recorder.steady_state_throughput() == pytest.approx(50.0)
        assert recorder.steady_state_throughput(0.01) == pytest.approx(50.0)


class TestRecorderEdges:
    def test_single_record_views(self):
        recorder = make_recorder(1)
        assert recorder.latencies_ns.shape == (1, 2)
        assert recorder.app_tier_bandwidth.shape == (1, 2)
        assert len(recorder) == 1

    @pytest.mark.parametrize("bad", [0.0, -0.5])
    def test_migration_rate_rejects_bad_quantum(self, bad):
        recorder = make_recorder()
        with pytest.raises(ConfigurationError):
            recorder.migration_rate_bytes_per_s(bad)

    def test_migration_rate_scales(self):
        recorder = make_recorder(2)
        rate = recorder.migration_rate_bytes_per_s(0.01)
        assert rate.tolist() == [409600.0, 409600.0]

    def test_empty_recorder_properties_raise(self):
        with pytest.raises(ConfigurationError):
            MetricsRecorder().throughput


EXPECTED_HEADER_2TIER = [
    "time_s", "throughput_gbps",
    "latency_ns_tier0", "latency_ns_tier1",
    "p_true", "p_measured",
    "app_bandwidth_gbps_tier0", "app_bandwidth_gbps_tier1",
    "migration_bytes", "antagonist_intensity",
]


class TestExportRoundTrip:
    def test_csv_header_is_stable(self, tmp_path):
        path = to_csv(make_recorder(), tmp_path / "out.csv")
        with path.open() as handle:
            header = next(csv.reader(handle))
        assert header == EXPECTED_HEADER_2TIER

    def test_json_emits_plain_python_scalars(self, tmp_path):
        """Numpy scalar types must never leak into json.dump."""
        recorder = make_recorder()
        path = to_json(recorder, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert set(data) == set(EXPECTED_HEADER_2TIER)
        for column, values in data.items():
            for value in values:
                assert isinstance(value, (int, float)), column
        assert data["time_s"] == [0.0, 0.01, 0.02]
        assert data["migration_bytes"] == [4096, 4096, 4096]

    def test_three_tier_roundtrip(self, tmp_path):
        recorder = make_recorder(2, n_tiers=3)
        csv_path = to_csv(recorder, tmp_path / "o.csv")
        json_path = to_json(recorder, tmp_path / "o.json")
        with csv_path.open() as handle:
            rows = list(csv.reader(handle))
        assert "latency_ns_tier2" in rows[0]
        assert len(rows) == 3
        data = json.loads(json_path.read_text())
        assert "app_bandwidth_gbps_tier2" in data
        assert len(data["latency_ns_tier2"]) == 2

    def test_csv_json_values_agree(self, tmp_path):
        recorder = make_recorder()
        with to_csv(recorder, tmp_path / "o.csv").open() as handle:
            rows = list(csv.reader(handle))
        data = json.loads(
            to_json(recorder, tmp_path / "o.json").read_text()
        )
        for i, name in enumerate(rows[0]):
            csv_column = [float(row[i]) for row in rows[1:]]
            assert csv_column == pytest.approx(
                [float(v) for v in data[name]]
            )

    def test_empty_recorder_rejected_by_both(self, tmp_path):
        with pytest.raises(ConfigurationError):
            to_csv(MetricsRecorder(), tmp_path / "x.csv")
        with pytest.raises(ConfigurationError):
            to_json(MetricsRecorder(), tmp_path / "x.json")
