"""Loop-level placement audit: observation neutrality, the audited
contention-step acceptance scenario, and colocated per-tenant samples."""

import numpy as np
import pytest

from repro.core.integrate import HememColloidSystem
from repro.experiments.common import scaled_machine
from repro.obs.diagnose import diagnose_events
from repro.obs.placement import PLACEMENT_AUDIT_ENV_VAR
from repro.obs.tracer import Tracer
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE

#: Audit every 5 quanta (50 ms of simulated time) so short runs still
#: record a gap trajectory.
AUDIT_PERIOD = "5"

#: Antagonist steps to intensity 2 at this simulated time.
STEP_S = 1.0


def run_traced(system, duration_s=3.0, contention=None, seed=7):
    tracer = Tracer(ring_size=4096)
    loop = SimulationLoop(
        machine=scaled_machine(FAST_SCALE),
        workload=GupsWorkload(scale=FAST_SCALE, seed=seed),
        system=system,
        contention=(contention if contention is not None
                    else (lambda t: 2 if t >= STEP_S else 0)),
        seed=seed,
        tracer=tracer,
    )
    metrics = loop.run(duration_s=duration_s)
    loop.emit_run_end()
    return metrics, tracer.events()


def audit_gaps(events, after_s=0.0):
    return [e["gap_balance"] for e in events
            if e.get("type") == "placement_sample"
            and "gap_balance" in e and e["time_s"] >= after_s]


class TestObservationNeutrality:
    def test_audited_run_is_bit_identical(self, monkeypatch):
        """The tentpole's hard requirement: enabling the audit must not
        change a single simulated number."""
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        plain, plain_events = run_traced(HememColloidSystem(),
                                         duration_s=1.5)
        assert not audit_gaps(plain_events)
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, AUDIT_PERIOD)
        audited, audited_events = run_traced(HememColloidSystem(),
                                             duration_s=1.5)
        assert audit_gaps(audited_events)
        assert np.array_equal(plain.throughput, audited.throughput)
        assert np.array_equal(plain.latencies_ns, audited.latencies_ns)
        assert np.array_equal(plain.migration_bytes,
                              audited.migration_bytes)

    def test_disabled_audit_emits_no_samples(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        __, events = run_traced(HememSystem(), duration_s=0.5)
        assert not [e for e in events
                    if e.get("type") == "placement_sample"]


class TestMisplacementAcceptance:
    """The paper's §2–§3 story as one assertion pair: after a contention
    step, Colloid's latency-balance placement closes the gap while the
    packing-driven baseline stays misplaced."""

    @pytest.fixture(autouse=True)
    def audit_on(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, AUDIT_PERIOD)

    def test_colloid_gap_shrinks_hemem_gap_sticks(self):
        __, colloid_events = run_traced(HememColloidSystem())
        __, hemem_events = run_traced(HememSystem())

        colloid_gaps = audit_gaps(colloid_events, after_s=STEP_S)
        hemem_gaps = audit_gaps(hemem_events, after_s=STEP_S)
        assert len(colloid_gaps) >= 10 and len(hemem_gaps) >= 10

        # Both start misplaced right after the step...
        assert colloid_gaps[0] > 0.1
        # ...Colloid converges to the balance placement, HeMem does not.
        assert colloid_gaps[-1] < 0.02
        assert hemem_gaps[-1] > 0.15
        assert max(colloid_gaps[-3:]) < min(hemem_gaps[-3:])

        # The diagnose layer reaches the same verdict: a sticky
        # misplacement-gap finding for hemem, none for hemem+colloid.
        sticky = [f for f in diagnose_events(hemem_events).findings
                  if f.detector == "misplacement-gap"]
        assert sticky and sticky[0].severity in ("warning", "critical")
        clean = [f for f in diagnose_events(colloid_events).findings
                 if f.detector == "misplacement-gap"]
        assert not clean

    def test_occupancy_ledger_tracks_the_migration(self):
        __, events = run_traced(HememColloidSystem())
        samples = [e for e in events
                   if e.get("type") == "placement_sample"]
        assert len(samples) >= 250
        first, last = samples[0], samples[-1]
        # Colloid balances under contention by shifting hot-decile
        # bytes out of the loaded default tier.
        hot_default_first = first["tier_bytes"][0][0]
        hot_default_last = last["tier_bytes"][0][0]
        assert hot_default_last < hot_default_first
        # Ledger bytes always account for the whole working set.
        total = sum(map(sum, first["tier_bytes"]))
        assert total == sum(map(sum, last["tier_bytes"]))
        # Flow matrices picked up actual migrations at some point.
        moved = sum(
            s["flow_bytes"][0][1] + s["flow_bytes"][1][0]
            for s in samples
        )
        assert moved > 0


class TestColocatedAudit:
    def test_per_tenant_samples_and_audits(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, AUDIT_PERIOD)
        from repro.runtime.colocation import ColocatedLoop, TenantSpec

        tracer = Tracer(ring_size=4096)
        machine = scaled_machine(FAST_SCALE)
        tenants = [
            TenantSpec(name="a",
                       workload=GupsWorkload(scale=FAST_SCALE / 2,
                                             seed=3),
                       system=HememColloidSystem()),
            TenantSpec(name="b",
                       workload=GupsWorkload(scale=FAST_SCALE / 2,
                                             seed=4),
                       system=HememSystem()),
        ]
        loop = ColocatedLoop(machine=machine, tenants=tenants,
                             contention=1, seed=5, tracer=tracer)
        loop.run(duration_s=1.0)
        events = tracer.events()
        by_tenant = {}
        for event in events:
            if event.get("type") != "placement_sample":
                continue
            by_tenant.setdefault(event.get("tenant"), []).append(event)
        assert set(by_tenant) == {"a", "b"}
        for name, samples in by_tenant.items():
            assert len(samples) == 100
            audited = [s for s in samples if "gap_balance" in s]
            assert len(audited) == 20
            for event in audited:
                assert 0.0 <= event["gap_balance"] <= 1.0
