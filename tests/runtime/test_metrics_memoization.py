"""MetricsRecorder memoized series: identity, invalidation, immutability."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.metrics import MetricsRecorder, QuantumRecord

SERIES = ("time_s", "throughput", "latencies_ns", "p_true",
          "p_measured", "app_tier_bandwidth", "migration_bytes")


def make_record(time_s=0.0, throughput=10.0):
    return QuantumRecord(
        time_s=time_s,
        throughput=throughput,
        latencies_ns=np.array([100.0, 300.0]),
        p_true=0.8,
        p_measured=0.75,
        app_tier_bandwidth=np.array([8.0, 2.0]),
        migration_bytes=4096,
        antagonist_intensity=0,
    )


class TestMemoization:
    def test_repeated_access_returns_same_array(self):
        recorder = MetricsRecorder()
        recorder.record(make_record())
        for name in SERIES:
            assert getattr(recorder, name) is getattr(recorder, name)

    def test_record_invalidates_cached_views(self):
        recorder = MetricsRecorder()
        recorder.record(make_record(time_s=0.0))
        stale = recorder.throughput
        recorder.record(make_record(time_s=0.01, throughput=20.0))
        fresh = recorder.throughput
        assert fresh is not stale
        assert len(fresh) == 2
        assert fresh[-1] == 20.0
        # The stale view is unchanged — consumers holding it see a
        # consistent (if old) snapshot, never a mutated buffer.
        assert len(stale) == 1

    def test_views_are_read_only(self):
        recorder = MetricsRecorder()
        recorder.record(make_record())
        for name in SERIES:
            with pytest.raises(ValueError):
                getattr(recorder, name)[0] = -1.0

    def test_values_match_records(self):
        recorder = MetricsRecorder()
        recorder.record(make_record(time_s=0.0, throughput=10.0))
        recorder.record(make_record(time_s=0.01, throughput=12.0))
        np.testing.assert_array_equal(recorder.time_s, [0.0, 0.01])
        np.testing.assert_array_equal(recorder.throughput, [10.0, 12.0])
        assert recorder.latencies_ns.shape == (2, 2)
        assert recorder.app_tier_bandwidth.shape == (2, 2)
        np.testing.assert_array_equal(recorder.migration_bytes,
                                      [4096, 4096])

    def test_derived_metrics_still_work(self):
        recorder = MetricsRecorder()
        recorder.record(make_record())
        rate = recorder.migration_rate_bytes_per_s(0.01)
        assert rate[0] == pytest.approx(4096 / 0.01)
        assert recorder.steady_state_throughput() == pytest.approx(10.0)

    def test_empty_recorder_still_raises(self):
        recorder = MetricsRecorder()
        with pytest.raises(ConfigurationError):
            recorder.throughput
