"""Tests for metrics export and repeated-run statistics."""

import csv
import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.experiment import repeat_steady_state
from repro.runtime.export import to_csv, to_json
from repro.runtime.loop import SimulationLoop
from repro.runtime.metrics import MetricsRecorder
from repro.tiering.static import StaticPlacementSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


@pytest.fixture
def metrics(small_machine):
    workload = GupsWorkload(scale=FAST_SCALE, seed=3)
    loop = SimulationLoop(machine=small_machine, workload=workload,
                          system=StaticPlacementSystem(), seed=3)
    return loop.run(duration_s=0.3)


class TestExport:
    def test_csv_roundtrip(self, metrics, tmp_path):
        path = to_csv(metrics, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "time_s"
        assert len(rows) == len(metrics) + 1
        assert float(rows[1][1]) == pytest.approx(
            metrics.throughput[0]
        )

    def test_json_roundtrip(self, metrics, tmp_path):
        path = to_json(metrics, tmp_path / "run.json")
        data = json.loads(path.read_text())
        assert len(data["time_s"]) == len(metrics)
        assert data["latency_ns_tier1"][0] == pytest.approx(
            float(metrics.latencies_ns[0, 1])
        )

    def test_empty_metrics_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            to_csv(MetricsRecorder(), tmp_path / "x.csv")


class TestRepeatedRuns:
    def test_statistics(self, small_machine):
        def factory(i):
            workload = GupsWorkload(scale=FAST_SCALE, seed=100 + i)
            return SimulationLoop(
                machine=small_machine, workload=workload,
                system=StaticPlacementSystem(), seed=100 + i,
            )

        result = repeat_steady_state(factory, n_runs=3,
                                     min_duration_s=1.0,
                                     max_duration_s=3.0)
        assert len(result.runs) == 3
        assert result.minimum <= result.mean <= result.maximum
        assert result.spread < 0.3

    def test_rejects_zero_runs(self, small_machine):
        with pytest.raises(ConfigurationError):
            repeat_steady_state(lambda i: None, n_runs=0)
