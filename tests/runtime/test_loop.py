"""Tests for the simulation loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.tiering.static import StaticPlacementSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def make_loop(small_machine, system=None, contention=0, **kwargs):
    workload = GupsWorkload(scale=FAST_SCALE, seed=4)
    return SimulationLoop(
        machine=small_machine,
        workload=workload,
        system=system if system is not None else StaticPlacementSystem(),
        contention=contention,
        seed=4,
        **kwargs,
    )


class TestStep:
    def test_records_one_quantum(self, small_machine):
        loop = make_loop(small_machine)
        record = loop.step()
        assert record.time_s == 0.0
        assert record.throughput > 0
        assert record.latencies_ns.shape == (2,)
        assert len(loop.metrics) == 1

    def test_clock_advances_by_quantum(self, small_machine):
        loop = make_loop(small_machine, quantum_ms=5.0)
        loop.step()
        loop.step()
        assert loop.time_s == pytest.approx(0.01)

    def test_run_duration(self, small_machine):
        loop = make_loop(small_machine)
        metrics = loop.run(duration_s=0.5)
        assert len(metrics) == 50  # 10 ms quanta

    def test_static_system_throughput_is_stationary(self, small_machine):
        loop = make_loop(small_machine)
        metrics = loop.run(duration_s=0.5)
        assert metrics.throughput.std() < 0.01 * metrics.throughput.mean()

    def test_latencies_are_cpu_observed(self, small_machine):
        """Recorded latencies include the CPU-to-CHA hop."""
        loop = make_loop(small_machine)
        record = loop.step()
        assert record.latencies_ns[1] >= 135.0  # 130 CHA + 5


class TestContention:
    def test_constant_contention(self, small_machine):
        loop = make_loop(small_machine, contention=3)
        record = loop.step()
        assert record.antagonist_intensity == 3
        assert record.latencies_ns[0] > 200.0

    def test_schedule_callable(self, small_machine):
        loop = make_loop(
            small_machine, contention=lambda t: 3 if t >= 0.05 else 0
        )
        metrics = loop.run(duration_s=0.1)
        intensities = [r.antagonist_intensity for r in metrics.records]
        assert intensities[0] == 0
        assert intensities[-1] == 3

    def test_contention_raises_latency_and_drops_throughput(
            self, small_machine):
        quiet = make_loop(small_machine, contention=0).run(0.2)
        loud = make_loop(small_machine, contention=3).run(0.2)
        assert loud.throughput.mean() < quiet.throughput.mean()
        assert loud.latencies_ns[:, 0].mean() > (
            quiet.latencies_ns[:, 0].mean()
        )


class TestInitialPlacement:
    def test_default_fill_packs_default_tier(self, small_machine):
        loop = make_loop(small_machine)
        assert loop.placement.free_bytes(0) < loop.placement.pages.sizes_bytes[0]

    def test_explicit_initial_placement(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        tiers = np.ones(workload.n_pages, dtype=np.int64)  # all alternate
        loop = SimulationLoop(
            machine=small_machine, workload=workload,
            system=StaticPlacementSystem(), initial_placement=tiers,
            seed=4,
        )
        record = loop.step()
        assert record.p_true == 0.0

    def test_rejects_wrong_length_placement(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        with pytest.raises(ConfigurationError):
            SimulationLoop(
                machine=small_machine, workload=workload,
                system=StaticPlacementSystem(),
                initial_placement=np.zeros(3, dtype=np.int64),
            )

    def test_rejects_bad_quantum(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        with pytest.raises(ConfigurationError):
            SimulationLoop(machine=small_machine, workload=workload,
                           system=StaticPlacementSystem(), quantum_ms=0.0)


class TestMigrationTrafficSpreading:
    def test_copy_debt_drains_at_rate_limit(self, small_machine):
        """A bursty system's copies are charged over following quanta."""
        loop = make_loop(small_machine, system=HememSystem(),
                         migration_limit_bytes=2 * 1024 * 1024)
        metrics = loop.run(duration_s=1.0)
        per_quantum = metrics.migration_bytes
        assert per_quantum.max() <= 2 * 1024 * 1024

    def test_p_true_tracks_promotions(self, small_machine):
        loop = make_loop(small_machine, system=HememSystem())
        metrics = loop.run(duration_s=4.0)
        assert metrics.p_true[-1] > metrics.p_true[0] - 0.05
        assert metrics.p_true[-10:].mean() > 0.8
