"""Tests for the steady-state runner and the metrics recorder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.experiment import run_steady_state
from repro.runtime.loop import SimulationLoop
from repro.runtime.metrics import MetricsRecorder, QuantumRecord
from repro.tiering.hemem import HememSystem
from repro.tiering.static import StaticPlacementSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def record_at(t, throughput=10.0, migration=0):
    return QuantumRecord(
        time_s=t,
        throughput=throughput,
        latencies_ns=np.array([70.0, 135.0]),
        p_true=0.9,
        p_measured=0.92,
        app_tier_bandwidth=np.array([9.0, 1.0]),
        migration_bytes=migration,
        antagonist_intensity=0,
    )


class TestMetricsRecorder:
    def test_series_views(self):
        recorder = MetricsRecorder()
        for i in range(5):
            recorder.record(record_at(i * 0.01, throughput=float(i)))
        assert len(recorder) == 5
        np.testing.assert_allclose(recorder.throughput,
                                   [0.0, 1.0, 2.0, 3.0, 4.0])
        assert recorder.latencies_ns.shape == (5, 2)
        assert recorder.app_tier_bandwidth.shape == (5, 2)

    def test_steady_state_tail_mean(self):
        recorder = MetricsRecorder()
        for i in range(100):
            recorder.record(record_at(i * 0.01,
                                      throughput=1.0 if i < 75 else 9.0))
        assert recorder.steady_state_throughput(
            tail_fraction=0.25
        ) == pytest.approx(9.0)

    def test_migration_rate(self):
        recorder = MetricsRecorder()
        recorder.record(record_at(0.0, migration=1000))
        rates = recorder.migration_rate_bytes_per_s(quantum_s=0.01)
        assert rates[0] == pytest.approx(100_000)

    def test_empty_recorder_rejects_views(self):
        recorder = MetricsRecorder()
        with pytest.raises(ConfigurationError):
            __ = recorder.throughput


class TestRunSteadyState:
    def test_static_workload_converges_quickly(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=StaticPlacementSystem(), seed=4)
        result = run_steady_state(loop, min_duration_s=2.0,
                                  max_duration_s=20.0)
        assert result.converged
        assert result.duration_s < 20.0
        assert result.throughput > 0

    def test_duration_cap_respected(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=HememSystem(), seed=4)
        result = run_steady_state(loop, min_duration_s=1.0,
                                  max_duration_s=3.0, tolerance=1e-6)
        assert result.duration_s <= 3.0 + 1e-9

    def test_rejects_bad_parameters(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=4)
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=StaticPlacementSystem(), seed=4)
        with pytest.raises(ConfigurationError):
            run_steady_state(loop, min_duration_s=5.0, max_duration_s=1.0)
        with pytest.raises(ConfigurationError):
            run_steady_state(loop, tolerance=0.0)
