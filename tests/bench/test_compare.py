"""Tests for bench records and regression comparison."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    CaseTiming,
    compare_records,
    load_record,
)
from repro.errors import ConfigurationError


def make_record(name="tiny", calibration=0.01, walls=None,
                diagnostics=None):
    walls = walls if walls is not None else {"fig5": 2.0, "fig6": 1.0}
    return BenchRecord(
        name=name,
        created_utc="2026-01-01T00:00:00+00:00",
        suite="tiny",
        scale=0.03,
        jobs=1,
        calibration_step_s=calibration,
        total_wall_s=sum(walls.values()),
        cases=tuple(CaseTiming(name=case, wall_s=wall,
                               cells_executed=4, cache_hits=0)
                    for case, wall in walls.items()),
        phase_totals_ns={"equilibrium_solve": 123},
        cache_hit_rate=None,
        peak_rss_bytes=100 * 1024 * 1024,
        python="3.12.0",
        machine="Linux-x86_64",
        diagnostics=diagnostics,
    )


def make_diagnostics(convergence=(12,), oscillation=0.0, thrash=0.0,
                     resets=0):
    return {"convergence_quanta": list(convergence),
            "oscillation_score": oscillation,
            "thrash_score": thrash,
            "watermark_resets": resets,
            "critical_findings": 0,
            "warning_findings": 0}


class TestRecordSerialization:
    def test_round_trip(self, tmp_path):
        record = make_record()
        path = record.write(tmp_path / "BENCH_tiny.json")
        loaded = load_record(path)
        assert loaded == record

    def test_schema_version_stamped(self, tmp_path):
        record = make_record()
        path = record.write(tmp_path / "BENCH_tiny.json")
        data = json.loads(path.read_text())
        assert data["bench_schema"] == BENCH_SCHEMA_VERSION

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        data = make_record().to_dict()
        data["bench_schema"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_record(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_record(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_garbage.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_record(path)

    def test_normalized_scores(self):
        record = make_record(calibration=0.01,
                             walls={"fig5": 2.0, "fig6": 1.0})
        scores = record.normalized_scores()
        assert scores["fig5"] == pytest.approx(200.0)
        assert scores["fig6"] == pytest.approx(100.0)


class TestCompareVerdicts:
    def test_identical_records_within(self):
        comparison = compare_records(make_record(), make_record())
        assert not comparison.has_regression
        assert {v.verdict for v in comparison.verdicts} == {"within"}

    def test_twenty_percent_slowdown_regresses(self):
        baseline = make_record(walls={"fig5": 2.0, "fig6": 1.0})
        current = make_record(walls={"fig5": 2.4, "fig6": 1.0})
        comparison = compare_records(baseline, current)
        assert comparison.has_regression
        verdicts = {v.name: v.verdict for v in comparison.verdicts}
        assert verdicts == {"fig5": "regress", "fig6": "within"}
        (regression,) = comparison.regressions
        assert regression.ratio == pytest.approx(1.2)

    def test_improvement_detected(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 1.0})
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression
        (verdict,) = comparison.verdicts
        assert verdict.verdict == "improve"

    def test_within_threshold_tolerated(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 2.2})  # +10% < 15%
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression

    def test_custom_threshold(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 2.2})
        comparison = compare_records(baseline, current, threshold=0.05)
        assert comparison.has_regression

    def test_calibration_normalizes_across_machines(self):
        # Same workload on a machine twice as slow: walls double but so
        # does the calibration step — no regression.
        baseline = make_record(calibration=0.01, walls={"fig5": 2.0})
        current = make_record(calibration=0.02, walls={"fig5": 4.0})
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression
        (verdict,) = comparison.verdicts
        assert verdict.ratio == pytest.approx(1.0)

    def test_new_and_missing_cases_flagged_not_regressed(self):
        baseline = make_record(walls={"fig5": 2.0, "fig6": 1.0})
        current = make_record(walls={"fig5": 2.0, "fig9": 3.0})
        comparison = compare_records(baseline, current)
        verdicts = {v.name: v.verdict for v in comparison.verdicts}
        assert verdicts == {"fig5": "within", "fig6": "missing",
                            "fig9": "new"}
        assert not comparison.has_regression

    def test_format_mentions_regressions(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 3.0})
        text = compare_records(baseline, current).format()
        assert "REGRESSION" in text
        assert "fig5" in text
        text_ok = compare_records(baseline, baseline).format()
        assert "no regressions" in text_ok


class TestCompareCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_exit_codes(self, tmp_path, capsys):
        base = make_record(walls={"fig5": 2.0}).write(
            tmp_path / "BENCH_base.json")
        slow = make_record(walls={"fig5": 2.5}).write(
            tmp_path / "BENCH_slow.json")
        assert self.run_cli("bench", "compare", str(base), str(base)) == 0
        assert self.run_cli("bench", "compare", str(base), str(slow)) == 1
        assert self.run_cli("bench", "compare", str(base), str(slow),
                            "--warn-only") == 0
        assert self.run_cli("bench", "compare", str(base), str(slow),
                            "--threshold", "0.5") == 0
        capsys.readouterr()

    def test_missing_baseline_is_structured_error(self, tmp_path, capsys):
        current = make_record().write(tmp_path / "BENCH_cur.json")
        code = self.run_cli("bench", "compare",
                            str(tmp_path / "missing.json"), str(current))
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSchemaCompat:
    def test_v2_diagnostics_round_trip(self, tmp_path):
        record = make_record(diagnostics=make_diagnostics())
        path = record.write(tmp_path / "BENCH_v2.json")
        loaded = load_record(path)
        assert loaded == record
        assert loaded.diagnostics["convergence_quanta"] == [12]

    def test_v1_record_loads_with_warning(self, tmp_path):
        # A pre-diagnostics baseline must stay loadable: warn, not fail.
        data = make_record().to_dict()
        del data["diagnostics"]
        data["bench_schema"] = 1
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps(data))
        with pytest.warns(UserWarning, match="predates the diagnostics"):
            loaded = load_record(path)
        assert loaded.diagnostics is None

    def test_v1_vs_v2_compare_skips_behavioral(self, tmp_path):
        data = make_record().to_dict()
        del data["diagnostics"]
        data["bench_schema"] = 1
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps(data))
        with pytest.warns(UserWarning):
            baseline = load_record(path)
        current = make_record(diagnostics=make_diagnostics())
        comparison = compare_records(baseline, current)
        assert comparison.behavioral == ()
        assert "schema v1" in comparison.behavioral_note
        assert not comparison.has_regression
        assert "not comparable" in comparison.format()


class TestBehavioralVerdicts:
    def compare(self, base_diag, cur_diag):
        return compare_records(make_record(diagnostics=base_diag),
                               make_record(diagnostics=cur_diag))

    def by_metric(self, comparison):
        return {v.metric: v for v in comparison.behavioral}

    def test_identical_diagnostics_within(self):
        comparison = self.compare(make_diagnostics(),
                                  make_diagnostics())
        verdicts = self.by_metric(comparison)
        assert verdicts["convergence_quanta"].verdict == "within"
        assert verdicts["oscillation_score"].verdict == "within"
        assert verdicts["thrash_score"].verdict == "within"
        assert not comparison.has_regression

    def test_convergence_regresses_past_double_plus_slack(self):
        # baseline 12 -> limit 12*2+5 = 29; 30 regresses, 29 doesn't.
        ok = self.compare(make_diagnostics(convergence=(12,)),
                          make_diagnostics(convergence=(29,)))
        assert not ok.has_regression
        bad = self.compare(make_diagnostics(convergence=(12,)),
                           make_diagnostics(convergence=(30,)))
        verdict = self.by_metric(bad)["convergence_quanta"]
        assert verdict.verdict == "regress"
        assert bad.has_regression
        assert "convergence_quanta" in bad.format()

    def test_no_longer_converging_regresses(self):
        comparison = self.compare(
            make_diagnostics(convergence=(12,)),
            make_diagnostics(convergence=(None,)))
        verdict = self.by_metric(comparison)["convergence_quanta"]
        assert verdict.verdict == "regress"
        assert "no longer converges" in verdict.note

    def test_first_finite_epoch_is_compared(self):
        # A None leading entry (unconverged first epoch on both sides)
        # falls through to the first finite one.
        comparison = self.compare(
            make_diagnostics(convergence=(None, 10)),
            make_diagnostics(convergence=(None, 11)))
        verdict = self.by_metric(comparison)["convergence_quanta"]
        assert verdict.verdict == "within"
        assert verdict.baseline == 10 and verdict.current == 11

    def test_score_regresses_only_past_warn_level_and_rise(self):
        # Big rise but below the warning level: within.
        quiet = self.compare(make_diagnostics(oscillation=0.0),
                             make_diagnostics(oscillation=0.3))
        assert self.by_metric(quiet)["oscillation_score"].verdict == \
            "within"
        # Above warn level but barely rose: within (already was noisy).
        stable = self.compare(make_diagnostics(oscillation=0.4),
                              make_diagnostics(oscillation=0.45))
        assert self.by_metric(stable)["oscillation_score"].verdict == \
            "within"
        # Crossed the level AND rose meaningfully: regress.
        bad = self.compare(make_diagnostics(oscillation=0.1),
                           make_diagnostics(oscillation=0.5))
        verdict = self.by_metric(bad)["oscillation_score"]
        assert verdict.verdict == "regress"
        assert bad.has_regression

    def test_thrash_score_judged_too(self):
        comparison = self.compare(make_diagnostics(thrash=0.0),
                                  make_diagnostics(thrash=0.6))
        assert self.by_metric(comparison)["thrash_score"].verdict == \
            "regress"

    def test_format_renders_behavioral_section(self):
        comparison = self.compare(make_diagnostics(),
                                  make_diagnostics())
        text = comparison.format()
        assert "behavioral (diagnosed representative run):" in text
        assert "convergence_quanta" in text


class TestSuiteContents:
    def test_solver_micro_in_every_suite(self):
        from repro.bench.suite import SUITES

        for suite in SUITES.values():
            names = [case.name for case in suite.cases]
            assert "solver-micro" in names

    def test_solver_micro_runs(self):
        from repro.bench.suite import SUITES
        from repro.exec.runner import Runner

        suite = SUITES["tiny"]
        case = next(c for c in suite.cases
                    if c.name == "solver-micro")
        case.run(suite.config(), Runner(jobs=1))
