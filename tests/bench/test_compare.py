"""Tests for bench records and regression comparison."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    CaseTiming,
    compare_records,
    load_record,
)
from repro.errors import ConfigurationError


def make_record(name="tiny", calibration=0.01, walls=None):
    walls = walls if walls is not None else {"fig5": 2.0, "fig6": 1.0}
    return BenchRecord(
        name=name,
        created_utc="2026-01-01T00:00:00+00:00",
        suite="tiny",
        scale=0.03,
        jobs=1,
        calibration_step_s=calibration,
        total_wall_s=sum(walls.values()),
        cases=tuple(CaseTiming(name=case, wall_s=wall,
                               cells_executed=4, cache_hits=0)
                    for case, wall in walls.items()),
        phase_totals_ns={"equilibrium_solve": 123},
        cache_hit_rate=None,
        peak_rss_bytes=100 * 1024 * 1024,
        python="3.12.0",
        machine="Linux-x86_64",
    )


class TestRecordSerialization:
    def test_round_trip(self, tmp_path):
        record = make_record()
        path = record.write(tmp_path / "BENCH_tiny.json")
        loaded = load_record(path)
        assert loaded == record

    def test_schema_version_stamped(self, tmp_path):
        record = make_record()
        path = record.write(tmp_path / "BENCH_tiny.json")
        data = json.loads(path.read_text())
        assert data["bench_schema"] == BENCH_SCHEMA_VERSION

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        data = make_record().to_dict()
        data["bench_schema"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_record(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_record(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_garbage.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_record(path)

    def test_normalized_scores(self):
        record = make_record(calibration=0.01,
                             walls={"fig5": 2.0, "fig6": 1.0})
        scores = record.normalized_scores()
        assert scores["fig5"] == pytest.approx(200.0)
        assert scores["fig6"] == pytest.approx(100.0)


class TestCompareVerdicts:
    def test_identical_records_within(self):
        comparison = compare_records(make_record(), make_record())
        assert not comparison.has_regression
        assert {v.verdict for v in comparison.verdicts} == {"within"}

    def test_twenty_percent_slowdown_regresses(self):
        baseline = make_record(walls={"fig5": 2.0, "fig6": 1.0})
        current = make_record(walls={"fig5": 2.4, "fig6": 1.0})
        comparison = compare_records(baseline, current)
        assert comparison.has_regression
        verdicts = {v.name: v.verdict for v in comparison.verdicts}
        assert verdicts == {"fig5": "regress", "fig6": "within"}
        (regression,) = comparison.regressions
        assert regression.ratio == pytest.approx(1.2)

    def test_improvement_detected(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 1.0})
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression
        (verdict,) = comparison.verdicts
        assert verdict.verdict == "improve"

    def test_within_threshold_tolerated(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 2.2})  # +10% < 15%
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression

    def test_custom_threshold(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 2.2})
        comparison = compare_records(baseline, current, threshold=0.05)
        assert comparison.has_regression

    def test_calibration_normalizes_across_machines(self):
        # Same workload on a machine twice as slow: walls double but so
        # does the calibration step — no regression.
        baseline = make_record(calibration=0.01, walls={"fig5": 2.0})
        current = make_record(calibration=0.02, walls={"fig5": 4.0})
        comparison = compare_records(baseline, current)
        assert not comparison.has_regression
        (verdict,) = comparison.verdicts
        assert verdict.ratio == pytest.approx(1.0)

    def test_new_and_missing_cases_flagged_not_regressed(self):
        baseline = make_record(walls={"fig5": 2.0, "fig6": 1.0})
        current = make_record(walls={"fig5": 2.0, "fig9": 3.0})
        comparison = compare_records(baseline, current)
        verdicts = {v.name: v.verdict for v in comparison.verdicts}
        assert verdicts == {"fig5": "within", "fig6": "missing",
                            "fig9": "new"}
        assert not comparison.has_regression

    def test_format_mentions_regressions(self):
        baseline = make_record(walls={"fig5": 2.0})
        current = make_record(walls={"fig5": 3.0})
        text = compare_records(baseline, current).format()
        assert "REGRESSION" in text
        assert "fig5" in text
        text_ok = compare_records(baseline, baseline).format()
        assert "no regressions" in text_ok


class TestCompareCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_exit_codes(self, tmp_path, capsys):
        base = make_record(walls={"fig5": 2.0}).write(
            tmp_path / "BENCH_base.json")
        slow = make_record(walls={"fig5": 2.5}).write(
            tmp_path / "BENCH_slow.json")
        assert self.run_cli("bench", "compare", str(base), str(base)) == 0
        assert self.run_cli("bench", "compare", str(base), str(slow)) == 1
        assert self.run_cli("bench", "compare", str(base), str(slow),
                            "--warn-only") == 0
        assert self.run_cli("bench", "compare", str(base), str(slow),
                            "--threshold", "0.5") == 0
        capsys.readouterr()

    def test_missing_baseline_is_structured_error(self, tmp_path, capsys):
        current = make_record().write(tmp_path / "BENCH_cur.json")
        code = self.run_cli("bench", "compare",
                            str(tmp_path / "missing.json"), str(current))
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSuiteContents:
    def test_solver_micro_in_every_suite(self):
        from repro.bench.suite import SUITES

        for suite in SUITES.values():
            names = [case.name for case in suite.cases]
            assert "solver-micro" in names

    def test_solver_micro_runs(self):
        from repro.bench.suite import SUITES
        from repro.exec.runner import Runner

        suite = SUITES["tiny"]
        case = next(c for c in suite.cases
                    if c.name == "solver-micro")
        case.run(suite.config(), Runner(jobs=1))
