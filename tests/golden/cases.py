"""The golden-regression case set and its evaluation.

Each case is a tiny (scale 0.03, seconds-long) but fully representative
run whose :class:`~repro.exec.result.CellResult` is pinned to a
committed JSON fixture. The suite fails whenever a change alters any
simulated number — deliberate behavior changes must refresh the
fixtures (``python -m tests.golden.refresh``) and commit the diff,
which makes every numeric drift reviewable.

Cases cover the three run modes plus a repeated (n_runs=3) grid cell,
the latter pinning the content-hash seed derivation of
:func:`repro.exec.runner.derive_run_seed`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.exec.runner import Runner, aggregate, expand_seeds
from repro.experiments.common import (
    ExperimentConfig,
    best_case_spec,
    steady_cell_spec,
    trace_cell_spec,
)

#: Where the committed fixtures live.
FIXTURE_DIR = Path(__file__).parent / "fixtures"

#: Geometry/seed shared by every golden case.
GOLDEN = ExperimentConfig(scale=0.03, seed=7)

#: Repetition count for the aggregated grid case.
GRID_RUNS = 3


def _steady(system: str, intensity: int):
    # Golden cells cap at 2 simulated seconds; the default settling
    # floor (max(3, 0.7 * cap)) would exceed the cap, so pin it low.
    spec = steady_cell_spec(system, intensity, GOLDEN, max_duration_s=2.0)
    return dataclasses.replace(spec, min_duration_s=1.0)


#: Single-spec cases: name -> RunSpec.
CASES = {
    "steady_hemem_c0": _steady("hemem", 0),
    "steady_hemem_colloid_c3": _steady("hemem+colloid", 3),
    "trace_tpp_colloid_step": trace_cell_spec(
        "tpp+colloid", GOLDEN, duration_s=1.5,
        contention=((0.0, 0), (0.75, 3)),
    ),
    "best_case_c2": best_case_spec(2, GOLDEN),
}

#: The aggregated case: (name, base spec, n_runs).
GRID_CASE = ("grid_hemem_colloid_c1_x3", _steady("hemem+colloid", 1),
             GRID_RUNS)


def evaluate_case(spec) -> dict:
    """Execute one single-spec case into its fixture payload."""
    result = Runner().run_one(spec)
    return {"spec_hash": spec.content_hash(), "result": result.to_dict()}


def evaluate_grid_case(spec, n_runs: int) -> dict:
    """Execute the repeated case into its fixture payload.

    The derived seeds are part of the payload: a change to the seed
    derivation (or to the spec hash feeding it) shows up as a fixture
    diff even if the aggregate numbers happen to stay close.
    """
    copies = expand_seeds(spec, n_runs)
    results = Runner().run(list(copies))
    agg = aggregate([results[copy] for copy in copies])
    return {
        "spec_hash": spec.content_hash(),
        "seeds": [copy.seed for copy in copies],
        "aggregate": {
            "throughput": agg.throughput,
            "minimum": agg.minimum,
            "maximum": agg.maximum,
            "tail_latencies_ns": list(agg.tail_latencies_ns),
            "tail_default_share": agg.tail_default_share,
        },
    }


def evaluate_all() -> dict:
    """name -> payload for every golden case (singles + grid)."""
    payloads = {name: evaluate_case(spec) for name, spec in CASES.items()}
    name, spec, n_runs = GRID_CASE
    payloads[name] = evaluate_grid_case(spec, n_runs)
    return payloads


def fixture_path(name: str) -> Path:
    return FIXTURE_DIR / f"{name}.json"


def load_fixture(name: str) -> dict:
    return json.loads(fixture_path(name).read_text())


def all_case_names() -> list:
    return [*CASES, GRID_CASE[0]]
