"""Regenerate the golden fixtures: ``python -m tests.golden.refresh``.

Run this (and commit the resulting diff) after a change that
*deliberately* alters simulated numbers — new physics, a retuned
parameter, a schema bump. Never refresh to silence an unexpected
failure: an unexplained fixture diff is exactly the regression the
suite exists to catch.
"""

from __future__ import annotations

import json
import os

from repro.check import CHECK_ENV_VAR

from tests.golden.cases import FIXTURE_DIR, evaluate_all, fixture_path


def refresh() -> None:
    os.environ.setdefault(CHECK_ENV_VAR, "1")
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for name, payload in evaluate_all().items():
        path = fixture_path(name)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    refresh()
