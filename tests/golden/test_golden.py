"""Golden regressions: every case must match its committed fixture.

A failure here means a change altered simulated numbers. If that was
intentional, refresh the fixtures (``python -m tests.golden.refresh``)
and commit the diff; if not, you found a regression.
"""

import pytest

from tests.golden.cases import (
    CASES,
    GRID_CASE,
    evaluate_case,
    evaluate_grid_case,
    fixture_path,
    load_fixture,
)

#: Relative tolerance for float comparison. The simulator is
#: deterministic, so this only absorbs cross-platform libm noise.
REL_TOL = 1e-9


def assert_matches(actual, expected, path="$"):
    """Recursive JSON comparison with float tolerance."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected an object"
        assert set(actual) == set(expected), (
            f"{path}: keys differ "
            f"({sorted(set(actual) ^ set(expected))})"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected an array"
        assert len(actual) == len(expected), f"{path}: length differs"
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert actual == pytest.approx(expected, rel=REL_TOL), (
            f"{path}: {actual!r} != {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def require_fixture(name):
    if not fixture_path(name).exists():
        pytest.fail(
            f"missing golden fixture {fixture_path(name)}; generate it "
            "with `python -m tests.golden.refresh` and commit it"
        )
    return load_fixture(name)


@pytest.mark.parametrize("name", sorted(CASES))
def test_single_cases_match_fixture(name):
    expected = require_fixture(name)
    assert_matches(evaluate_case(CASES[name]), expected, path=name)


def test_grid_case_matches_fixture():
    name, spec, n_runs = GRID_CASE
    expected = require_fixture(name)
    assert_matches(evaluate_grid_case(spec, n_runs), expected, path=name)
