"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "hemem+colloid"
        assert args.workload == "gups"
        assert args.contention == 0

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "bogus"])


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--system", "hemem", "--workload", "gups",
            "--contention", "0", "--duration", "1", "--scale", "0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "tier latencies" in out

    def test_run_exports_json(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        code = main([
            "run", "--system", "static", "--duration", "0.5",
            "--scale", "0.03", "--json", str(out_path),
        ])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert "throughput_gbps" in data

    @pytest.mark.parametrize("workload", ["gapbs", "silo", "cachelib"])
    def test_all_workloads_runnable(self, workload, capsys):
        code = main([
            "run", "--workload", workload, "--system", "static",
            "--duration", "0.5", "--scale", "0.03",
        ])
        assert code == 0


class TestTracing:
    def test_trace_and_profile_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "run", "--system", "hemem+colloid", "--duration", "0.5",
            "--scale", "0.03", "--trace", str(trace_path), "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "equilibrium_solve" in out
        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        types = {e["type"] for e in events}
        assert {"run_start", "compute_shift", "watermark_reset",
                "migration_executed", "phase_timing"} <= types

    def test_report_renders_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main([
            "run", "--system", "hemem+colloid", "--duration", "0.5",
            "--scale", "0.03", "--trace", str(trace_path), "--profile",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "convergence" in out
        assert "migration efficiency" in out
        assert "phase-time breakdown" in out

    def test_report_missing_trace_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestContentionStep:
    def test_schedule_parsed(self):
        from repro.cli import _contention_schedule

        args = build_parser().parse_args([
            "run", "--contention", "1",
            "--contention-step", "1.5:2",
            "--contention-step", "3:0",
        ])
        schedule = args and _contention_schedule(args)
        assert callable(schedule)
        assert [schedule(t) for t in (0.0, 1.0, 1.5, 2.9, 3.0)] == \
            [1, 1, 2, 2, 0]

    def test_no_steps_returns_base_int(self):
        from repro.cli import _contention_schedule

        args = build_parser().parse_args(["run", "--contention", "2"])
        assert _contention_schedule(args) == 2

    def test_bad_spec_is_structured_error(self, capsys):
        code = main(["run", "--duration", "0.5", "--scale", "0.03",
                     "--contention-step", "nonsense"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_dynamic_run_traces_contention_change_and_reset(
            self, tmp_path, capsys):
        # The Fig. 4c methodology: a mid-run contention step squeezes
        # the bracket until a genuine dynamic watermark reset fires.
        trace_path = tmp_path / "dynamic.jsonl"
        code = main([
            "run", "--system", "hemem+colloid", "--duration", "3",
            "--scale", "0.03", "--contention", "0",
            "--contention-step", "1.5:2", "--trace", str(trace_path),
        ])
        assert code == 0
        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        changes = [e for e in events
                   if e["type"] == "contention_change"]
        assert changes and changes[0]["intensity"] == 2
        assert changes[0]["previous"] == 0
        resets = [e for e in events if e["type"] == "watermark_reset"
                  and e["side"] != "init"]
        assert resets, "contention step should force a Fig. 4c reset"
        capsys.readouterr()
        # The diagnostics engine judges the same trace healthy: the
        # reset is an expected epoch-boundary response, and both
        # epochs report finite convergence.
        assert main(["diagnose", str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["watermark_resets"] >= 1
        quanta = payload["summary"]["convergence_quanta"]
        assert quanta and all(q is not None for q in quanta)


class TestOtherCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "antagonist_isolated_share" in out

    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "pstar-jump" in out


class TestColocatedRun:
    def test_two_tenants_print_per_tenant_lines(self, capsys):
        code = main([
            "run", "--tenant", "gups:hemem", "--tenant", "gups",
            "--duration", "0.5", "--scale", "0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenants" in out
        assert "gups=gups/hemem" in out
        assert "gups2=gups/hemem+colloid" in out  # default system
        assert "gups2" in out
        assert "grant" in out

    def test_tenant_trace_report_and_diagnose(self, tmp_path, capsys):
        trace = tmp_path / "coloc.jsonl"
        assert main([
            "run", "--tenant", "gups", "--tenant", "gups",
            "--duration", "0.5", "--scale", "0.03", "--check",
            "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== tenant: gups ==" in out
        assert "== tenant: gups2 ==" in out
        diag_path = tmp_path / "diag.json"
        assert main(["diagnose", str(trace), "--json",
                     "--out", str(diag_path)]) == 0
        payload = json.loads(diag_path.read_text())
        assert set(payload["tenants"]) == {"gups", "gups2"}

    def test_unknown_tenant_workload_is_structured_error(self, capsys):
        code = main([
            "run", "--tenant", "nosuch", "--duration", "0.5",
            "--scale", "0.03",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_tenant_system_is_structured_error(self, capsys):
        code = main([
            "run", "--tenant", "gups:nosuch", "--duration", "0.5",
            "--scale", "0.03",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err
