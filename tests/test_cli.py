"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "hemem+colloid"
        assert args.workload == "gups"
        assert args.contention == 0

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "bogus"])


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--system", "hemem", "--workload", "gups",
            "--contention", "0", "--duration", "1", "--scale", "0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "tier latencies" in out

    def test_run_exports_json(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        code = main([
            "run", "--system", "static", "--duration", "0.5",
            "--scale", "0.03", "--json", str(out_path),
        ])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert "throughput_gbps" in data

    @pytest.mark.parametrize("workload", ["gapbs", "silo", "cachelib"])
    def test_all_workloads_runnable(self, workload, capsys):
        code = main([
            "run", "--workload", workload, "--system", "static",
            "--duration", "0.5", "--scale", "0.03",
        ])
        assert code == 0


class TestOtherCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "antagonist_isolated_share" in out

    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "pstar-jump" in out
