"""Diagnostics engine: detectors over synthetic timelines, the summary
round-trip, and the CLI exit code on a misbehaving trace."""

import json

import pytest

from repro.cli import main
from repro.obs.diagnose import (
    DEFAULT_CONFIG,
    DiagnosticsSummary,
    diagnose_events,
    diagnostics_enabled,
    disable_diagnostics,
    enable_diagnostics,
    format_diagnostics,
    with_overrides,
)
from repro.obs.timeline import build_timeline

META = {"type": "run_start", "time_s": 0.0, "system": "hemem+colloid",
        "workload": "gups", "n_tiers": 2, "quantum_ms": 10.0,
        "migration_limit_bytes": 1 << 20}


def quantum(index, p, l_d, l_a, executed=0):
    time_s = round(index * 0.01, 6)
    return [
        {"type": "compute_shift", "time_s": time_s, "p": p,
         "p_lo": 0.0, "p_hi": 1.0, "dp": 0.0,
         "latency_default_ns": l_d, "latency_alternate_ns": l_a},
        {"type": "migration_executed", "time_s": time_s,
         "planned_moves": 1, "planned_bytes": executed,
         "executed_bytes": executed, "budget_bytes": executed,
         "moves_applied": 1, "moves_skipped": 0, "moves_deferred": 0},
    ]


def reset(index, side="lo"):
    return {"type": "watermark_reset", "time_s": round(index * 0.01, 6),
            "side": side, "p": 0.5, "resets": 1}


def oscillating_trace(n=60):
    """p alternates well above the deadband while latencies stay
    imbalanced — the pathological bracket-bouncing run."""
    events = [META]
    for i in range(n):
        p = 0.5 + (0.1 if i % 2 else -0.1)
        events += quantum(i, p=p, l_d=200.0, l_a=100.0)
    return events


def converging_trace():
    """p walks down for 10 quanta, then latencies balance and hold."""
    events = [META]
    for i in range(10):
        events += quantum(i, p=0.9 - 0.04 * i, l_d=200.0, l_a=100.0,
                          executed=10 << 20)
    for i in range(10, 20):
        events += quantum(i, p=0.5, l_d=103.0, l_a=100.0)
    return events


class TestConvergence:
    def test_latency_balance_criterion(self):
        diagnostics = diagnose_events(converging_trace())
        assert diagnostics.summary.convergence_quanta == (10,)
        finding = [f for f in diagnostics.findings
                   if f.detector == "convergence"][0]
        assert finding.severity == "info"
        assert finding.evidence["criterion"] == "latency-balance"

    def test_p_settled_corner_criterion(self):
        # Latencies never balance (capacity-bound corner) but p is
        # flat — the run is converged, not broken.
        events = [META]
        for i in range(25):
            events += quantum(i, p=0.7, l_d=130.0, l_a=100.0)
        diagnostics = diagnose_events(events)
        assert diagnostics.summary.convergence_quanta == (0,)
        finding = [f for f in diagnostics.findings
                   if f.detector == "convergence"][0]
        assert finding.evidence["criterion"] == "p-settled"

    def test_never_converges_warns(self):
        events = [META]
        for i in range(30):
            p = 0.5 + (0.1 if i % 2 else -0.1)
            events += quantum(i, p=p, l_d=200.0, l_a=100.0)
        diagnostics = diagnose_events(events)
        assert diagnostics.summary.convergence_quanta == (None,)
        warnings = [f for f in diagnostics.findings
                    if f.detector == "convergence"]
        assert warnings[0].severity == "warning"


class TestOscillation:
    def test_oscillating_trace_is_critical(self):
        diagnostics = diagnose_events(oscillating_trace())
        oscillation = [f for f in diagnostics.findings
                       if f.detector == "oscillation"]
        assert oscillation and oscillation[0].severity == "critical"
        assert diagnostics.has_critical
        assert diagnostics.summary.oscillation_score >= 0.9

    def test_noise_below_deadband_ignored(self):
        # CHA noise moves p a little every quantum; successive iid
        # differences flip sign ~2/3 of the time, so sub-deadband
        # jitter must not read as oscillation.
        events = [META]
        for i in range(60):
            p = 0.5 + (0.01 if i % 2 else -0.01)  # < deadband_p
            events += quantum(i, p=p, l_d=103.0, l_a=100.0)
        diagnostics = diagnose_events(events)
        assert not [f for f in diagnostics.findings
                    if f.detector == "oscillation"]
        assert diagnostics.summary.oscillation_score == 0.0


class TestResetStorm:
    def test_storm_outside_grace_is_flagged(self):
        events = [META]
        for i in range(60):
            events += quantum(i, p=0.7, l_d=130.0, l_a=100.0)
        for i in (30, 33, 36, 39, 42, 45):
            events.append(reset(i))
        diagnostics = diagnose_events(events)
        storm = [f for f in diagnostics.findings
                 if f.detector == "reset-storm"
                 and f.severity != "info"]
        assert storm and storm[0].severity == "critical"

    def test_resets_after_boundary_are_expected(self):
        events = [META]
        for i in range(60):
            events += quantum(i, p=0.7, l_d=130.0, l_a=100.0)
        events.append({"type": "workload_shift", "time_s": 0.10,
                       "epoch": 1})
        events.append(reset(12))
        events.append(reset(14))
        diagnostics = diagnose_events(events)
        storm = [f for f in diagnostics.findings
                 if f.detector == "reset-storm"]
        assert all(f.severity == "info" for f in storm)
        assert "Fig. 4c" in storm[0].message

    def test_isolated_reset_reported_as_info(self):
        events = [META]
        for i in range(60):
            events += quantum(i, p=0.7, l_d=130.0, l_a=100.0)
        events.append(reset(40))
        diagnostics = diagnose_events(events)
        isolated = [f for f in diagnostics.findings
                    if f.detector == "reset-storm"]
        assert isolated and isolated[0].severity == "info"
        assert "isolated" in isolated[0].message


class TestThrash:
    def test_post_convergence_migration_flagged(self):
        events = [META]
        for i in range(10):
            events += quantum(i, p=0.9 - 0.04 * i, l_d=200.0,
                              l_a=100.0, executed=10 << 20)
        for i in range(10, 20):
            events += quantum(i, p=0.5, l_d=103.0, l_a=100.0,
                              executed=8 << 20)
        diagnostics = diagnose_events(events)
        thrash = [f for f in diagnostics.findings
                  if f.detector == "migration-thrash"]
        assert thrash and thrash[0].severity == "critical"
        assert diagnostics.summary.thrash_score == pytest.approx(0.8)

    def test_quiet_tail_not_flagged(self):
        diagnostics = diagnose_events(converging_trace())
        assert not [f for f in diagnostics.findings
                    if f.detector == "migration-thrash"]
        assert diagnostics.summary.thrash_score == 0.0


class TestSummaryAndFormat:
    def test_summary_round_trip(self):
        summary = diagnose_events(converging_trace()).summary
        clone = DiagnosticsSummary.from_dict(
            json.loads(json.dumps(summary.to_dict())))
        assert clone == summary

    def test_format_lists_findings_by_severity(self):
        diagnostics = diagnose_events(oscillating_trace())
        timeline = build_timeline(oscillating_trace())
        text = format_diagnostics(diagnostics, timeline=timeline)
        assert "-- diagnostics --" in text
        assert "[CRITICAL]" in text
        assert text.index("CRITICAL") < text.index("WARNING")

    def test_with_overrides_skips_none(self):
        config = with_overrides(DEFAULT_CONFIG, epsilon=0.2,
                                sustain_quanta=None)
        assert config.epsilon == 0.2
        assert config.sustain_quanta == DEFAULT_CONFIG.sustain_quanta

    def test_env_toggle(self):
        disable_diagnostics()
        assert not diagnostics_enabled()
        enable_diagnostics()
        try:
            assert diagnostics_enabled()
        finally:
            disable_diagnostics()


class TestCli:
    def write_trace(self, tmp_path, events):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        return path

    def test_exit_nonzero_on_critical(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, oscillating_trace())
        code = main(["diagnose", str(path)])
        assert code == 2
        assert "oscillat" in capsys.readouterr().out

    def test_exit_zero_on_healthy_trace(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, converging_trace())
        code = main(["diagnose", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged" in out

    def test_json_output(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, converging_trace())
        code = main(["diagnose", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["convergence_quanta"] == [10]

    def test_out_writes_json_file(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, converging_trace())
        out_path = tmp_path / "diag.json"
        code = main(["diagnose", str(path), "--json",
                     "--out", str(out_path)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["convergence_quanta"] == [10]
