"""PhaseProfiler nested-span edge cases — the Chrome-trace exporter
relies on this exact contract (depth, auto-close, ordering)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.profile import PhaseProfiler, merge_phase_events


class TestNestedSpans:
    def test_reentrant_same_name_records_distinct_depths(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.push("solve")
        profiler.push("solve")
        profiler.pop()
        profiler.pop()
        spans = profiler.drain_spans()
        assert [(s.name, s.depth) for s in spans] == \
            [("solve", 0), ("solve", 1)]
        assert not any(s.unclosed for s in spans)
        # Both spans are charged to the one named total.
        assert profiler.summary()["solve"]["count"] == 2

    def test_inner_span_nested_within_outer(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.span("step"):
            with profiler.span("migrate"):
                pass
        outer, inner = profiler.drain_spans()
        assert (outer.name, inner.name) == ("step", "migrate")
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns
        assert inner.duration_ns <= outer.duration_ns

    def test_pop_without_push_raises(self):
        profiler = PhaseProfiler(enabled=True)
        with pytest.raises(ConfigurationError):
            profiler.pop()

    def test_unclosed_spans_flagged_and_charged_at_drain(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.push("outer")
        profiler.push("inner")
        assert profiler.open_depth == 2
        spans = profiler.drain_spans()
        assert profiler.open_depth == 0
        assert all(s.unclosed for s in spans)
        # Sorted by (start, depth): outer first despite LIFO close.
        assert [s.name for s in spans] == ["outer", "inner"]
        # Auto-close charges totals, keeping phases consistent with
        # what the exporter renders.
        assert set(profiler.phases) == {"outer", "inner"}

    def test_drain_clears_spans(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.span("once"):
            pass
        assert len(profiler.drain_spans()) == 1
        assert profiler.drain_spans() == []

    def test_disabled_profiler_is_inert(self):
        profiler = PhaseProfiler(enabled=False)
        profiler.push("ignored")
        assert profiler.pop() == 0  # no ConfigurationError either
        with profiler.span("ignored"):
            pass
        assert profiler.drain_spans() == []
        assert profiler.phases == {}


class TestLapTimer:
    def test_lap_accumulates_totals_and_counts(self):
        profiler = PhaseProfiler(enabled=True)
        for _ in range(3):
            profiler.start()
            profiler.lap("solve")
        summary = profiler.summary()
        assert summary["solve"]["count"] == 3
        assert summary["solve"]["total_ns"] >= 0

    def test_reset_clears_everything(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.start()
        profiler.lap("solve")
        profiler.push("open")
        profiler.reset()
        assert profiler.phases == {}
        assert profiler.open_depth == 0
        assert profiler.drain_spans() == []


class TestMergePhaseEvents:
    def test_sums_across_events(self):
        merged = merge_phase_events([
            {"phases": {"solve": 10, "migrate": 5}},
            {"phases": {"solve": 7}},
        ])
        assert merged == {"solve": 17, "migrate": 5}

    def test_missing_phases_mapping_raises(self):
        with pytest.raises(ConfigurationError):
            merge_phase_events([{"type": "phase_timing"}])
