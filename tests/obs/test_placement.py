"""Placement observability: ledger, flow tracker, audit references,
trace-side summaries, timeline folding, detectors, and the report/
chrome-trace renderings."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.chrometrace import chrome_trace_events
from repro.obs.diagnose import diagnose_events
from repro.obs.placement import (
    DEFAULT_AUDIT_PERIOD_QUANTA,
    FlowTracker,
    N_HOTNESS_DECILES,
    PLACEMENT_AUDIT_ENV_VAR,
    PlacementObserver,
    balance_p,
    disable_placement_audit,
    enable_placement_audit,
    flow_matrix,
    hotness_deciles,
    occupancy_ledger,
    pack_hottest_p,
    placement_audit_enabled,
    placement_audit_period,
    placement_payload,
    summarize_placement_events,
)
from repro.obs.report import format_summary, summarize_events
from repro.obs.timeline import build_timeline
from repro.obs.tracer import Tracer
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState

META = {"type": "run_start", "time_s": 0.0, "system": "hemem+colloid",
        "workload": "gups", "n_tiers": 2, "quantum_ms": 10.0,
        "migration_limit_bytes": 1 << 20}


def make_placement(tiers, page_bytes=4096):
    pages = PageArray.uniform(len(tiers), page_bytes)
    placement = PlacementState(
        pages, [page_bytes * len(tiers)] * 2
    )
    for t in (0, 1):
        idx = np.flatnonzero(np.asarray(tiers) == t)
        placement.move(idx, t)
    return placement


def sample(index, tenant=None, **extra):
    event = {
        "type": "placement_sample", "time_s": round(index * 0.01, 6),
        "tier_pages": [[1] * 10, [2] * 10],
        "tier_bytes": [[4096] * 10, [8192] * 10],
        "flow_bytes": [[0, 4096], [8192, 0]],
        "ping_pong_pages": 0,
        "wasted_bytes": 0,
    }
    if tenant is not None:
        event["tenant"] = tenant
    event.update(extra)
    return event


class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        assert not placement_audit_enabled()
        assert placement_audit_period() == DEFAULT_AUDIT_PERIOD_QUANTA

    def test_enable_and_period(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        enable_placement_audit()
        assert placement_audit_enabled()
        assert placement_audit_period() == DEFAULT_AUDIT_PERIOD_QUANTA
        enable_placement_audit(25)
        assert placement_audit_period() == 25
        disable_placement_audit()
        assert not placement_audit_enabled()

    def test_falsey_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv(PLACEMENT_AUDIT_ENV_VAR, value)
            assert not placement_audit_enabled()

    def test_rejects_nonpositive_period(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            enable_placement_audit(0)


class TestHotnessDeciles:
    def test_hottest_pages_in_decile_zero(self):
        probs = np.linspace(1.0, 0.1, 20)
        deciles = hotness_deciles(probs)
        assert deciles[0] == 0 and deciles[1] == 0
        assert deciles[-1] == N_HOTNESS_DECILES - 1
        assert np.bincount(deciles).tolist() == [2] * 10

    def test_ties_keep_index_order(self):
        deciles = hotness_deciles(np.full(10, 0.1))
        assert deciles.tolist() == list(range(10))

    def test_empty(self):
        assert len(hotness_deciles(np.empty(0))) == 0


class TestOccupancyLedger:
    def test_counts_and_bytes_per_tier(self):
        # 20 pages, hottest half in tier 0, coldest half in tier 1.
        tiers = [0] * 10 + [1] * 10
        placement = make_placement(tiers)
        deciles = hotness_deciles(np.linspace(1.0, 0.1, 20))
        tier_pages, tier_bytes = occupancy_ledger(placement, deciles)
        assert tier_pages[0] == [2] * 5 + [0] * 5
        assert tier_pages[1] == [0] * 5 + [2] * 5
        assert tier_bytes[0] == [8192] * 5 + [0] * 5
        assert sum(map(sum, tier_bytes)) == 20 * 4096


class TestFlowMatrix:
    def test_accumulates_bytes_by_direction(self):
        flows = flow_matrix(
            2,
            np.array([0, 1, 0]), np.array([1, 0, 1]),
            np.array([100, 50, 25]),
        )
        assert flows[0, 1] == 125
        assert flows[1, 0] == 50
        assert flows.sum() == 175

    def test_empty_moves(self):
        flows = flow_matrix(2, np.empty(0), np.empty(0), np.empty(0))
        assert flows.sum() == 0


class TestFlowTracker:
    def test_reversals_accumulate_to_ping_pong(self):
        tracker = FlowTracker(window_quanta=10, min_reversals=2)
        page = np.array([7])
        size = np.array([4096])
        # 0->1, back 1->0 (reversal 1), again 0->1 (reversal 2).
        ping, wasted = tracker.observe(page, np.array([0]),
                                       np.array([1]), size)
        assert (ping, wasted) == (0, 0)
        ping, wasted = tracker.observe(page, np.array([1]),
                                       np.array([0]), size)
        assert (ping, wasted) == (0, 4096)
        ping, wasted = tracker.observe(page, np.array([0]),
                                       np.array([1]), size)
        assert (ping, wasted) == (1, 4096)
        assert tracker.total_wasted_bytes == 8192

    def test_window_expires_old_reversals(self):
        tracker = FlowTracker(window_quanta=2, min_reversals=1)
        page, size = np.array([1]), np.array([64])
        tracker.observe(page, np.array([0]), np.array([1]), size)
        ping, __ = tracker.observe(page, np.array([1]), np.array([0]),
                                   size)
        assert ping == 1
        none = (np.empty(0, dtype=np.int64),) * 3
        for __ in range(3):
            ping, w = tracker.observe(none[0], none[1], none[2],
                                      np.empty(0, dtype=np.int64))
        assert ping == 0

    def test_one_way_moves_never_ping_pong(self):
        tracker = FlowTracker()
        for q in range(5):
            page = np.array([q])
            ping, wasted = tracker.observe(
                page, np.array([0]), np.array([1]), np.array([10])
            )
            assert (ping, wasted) == (0, 0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            FlowTracker(window_quanta=0)


class TestPackHottestP:
    def test_greedy_fill_by_hotness(self):
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        sizes = np.full(4, 100, dtype=np.int64)
        assert pack_hottest_p(probs, sizes, 250) == pytest.approx(0.7)

    def test_everything_fits(self):
        probs = np.array([0.5, 0.5])
        sizes = np.full(2, 10, dtype=np.int64)
        assert pack_hottest_p(probs, sizes, 1000) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            pack_hottest_p(np.zeros(3), np.zeros(2, dtype=np.int64), 10)


class TestBalanceP:
    def test_bisects_to_latency_crossing(self):
        # L_D = 100 + 200p, L_A = 300 - 200p: balanced at p = 0.5.
        def evaluate(p):
            return np.array([100 + 200 * p, 300 - 200 * p]), 1.0

        assert balance_p(evaluate) == pytest.approx(0.5, abs=1e-3)

    def test_clamps_to_bounds(self):
        always_hot = lambda p: (np.array([500.0, 100.0]), 1.0)
        always_cold = lambda p: (np.array([100.0, 500.0]), 1.0)
        assert balance_p(always_hot) == 0.0
        assert balance_p(always_cold) == 1.0


class TestObserver:
    def test_emits_sample_every_quantum_and_audits_on_period(
            self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_AUDIT_ENV_VAR, raising=False)
        tracer = Tracer(ring_size=64)
        observer = PlacementObserver(n_tiers=2, tracer=tracer,
                                     audit_period=3)
        placement = make_placement([0] * 4 + [1] * 4)
        probs = np.linspace(0.3, 0.05, 8)
        probs /= probs.sum()

        def evaluate(p):
            return np.array([100 + 50 * p, 150 - 50 * p]), 2.0 - p

        for q in range(6):
            observer.observe_quantum(
                access_probs=probs, placement=placement, result=object(),
                p_actual=0.6,
                evaluate=evaluate if observer.audit_due() else None,
            )
        events = tracer.events()
        samples = [e for e in events
                   if e["type"] == "placement_sample"]
        assert len(samples) == 6
        audited = [e for e in samples if "gap_balance" in e]
        assert len(audited) == 2  # quanta 0 and 3
        assert observer.audits_run == 2
        for event in audited:
            assert 0.0 <= event["gap_balance"]
            assert 0.0 <= event["p_balance"] <= event["p_packed"] <= 1.0

    def test_result_without_move_record_still_samples(self):
        tracer = Tracer(ring_size=8)
        observer = PlacementObserver(n_tiers=2, tracer=tracer,
                                     audit_period=10)
        placement = make_placement([0, 1])
        observer.observe_quantum(
            access_probs=np.array([0.6, 0.4]), placement=placement,
            result=object(), p_actual=0.6,
        )
        [event] = tracer.events()
        assert event["flow_bytes"] == [[0, 0], [0, 0]]


class TestSummaries:
    def test_no_samples_is_none(self):
        assert summarize_placement_events([META]) is None
        assert placement_payload([META]) is None

    def test_summary_folds_samples_and_audits(self):
        events = [META]
        for i in range(4):
            extra = {}
            if i in (0, 3):
                extra = {"gap_balance": 0.2 - 0.05 * i,
                         "gap_packed": 0.1}
            events.append(sample(i, ping_pong_pages=i,
                                 wasted_bytes=100 * i, **extra))
        summary = summarize_placement_events(events)
        assert summary["n_samples"] == 4
        assert summary["n_audits"] == 2
        assert summary["ping_pong_pages_peak"] == 3
        assert summary["wasted_migration_bytes"] == 600
        assert summary["flow_bytes_total"] == 4 * (4096 + 8192)
        assert summary["tier_bytes_last"] == [40960, 81920]
        assert summary["gap_balance_first"] == pytest.approx(0.2)
        assert summary["gap_balance_last"] == pytest.approx(0.05)

    def test_payload_scopes_tenants(self):
        events = [META,
                  sample(0, tenant="a", ping_pong_pages=2),
                  sample(0, tenant="b")]
        payload = placement_payload(events)
        assert payload["n_samples"] == 2
        assert set(payload["tenants"]) == {"a", "b"}
        assert payload["tenants"]["a"]["ping_pong_pages_peak"] == 2
        assert payload["tenants"]["b"]["ping_pong_pages_peak"] == 0


class TestTimelineFold:
    def test_single_sample_fields(self):
        events = [META, sample(0, gap_balance=0.1, gap_packed=0.05,
                               p_packed=0.8, p_balance=0.6)]
        timeline = build_timeline(events)
        [folded] = timeline.samples
        assert folded.occupancy_bytes == ((4096,) * 10, (8192,) * 10)
        assert folded.flow_bytes == ((0, 4096), (8192, 0))
        assert folded.gap_balance == pytest.approx(0.1)
        assert folded.p_balance == pytest.approx(0.6)

    def test_tenant_samples_sum_and_keep_worst_gap(self):
        events = [META,
                  sample(0, tenant="a", ping_pong_pages=1,
                         wasted_bytes=10, gap_balance=0.1,
                         gap_packed=0.0),
                  sample(0, tenant="b", ping_pong_pages=2,
                         wasted_bytes=20, gap_balance=0.3,
                         gap_packed=0.2)]
        timeline = build_timeline(events)
        [folded] = timeline.samples
        assert folded.occupancy_bytes[0] == (8192,) * 10
        assert folded.flow_bytes == ((0, 8192), (16384, 0))
        assert folded.ping_pong_pages == 3
        assert folded.wasted_migration_bytes == 30
        assert folded.gap_balance == pytest.approx(0.3)


class TestDetectors:
    def test_sustained_ping_pong_warns(self):
        events = [META]
        for i in range(20):
            events.append(sample(i, ping_pong_pages=6,
                                 wasted_bytes=4096))
        diagnostics = diagnose_events(events)
        findings = [f for f in diagnostics.findings
                    if f.detector == "ping-pong-churn"]
        assert findings and findings[0].severity in (
            "warning", "critical")
        assert findings[0].evidence["peak_ping_pong_pages"] == 6

    def test_quiet_run_has_no_churn_finding(self):
        events = [META] + [sample(i) for i in range(20)]
        diagnostics = diagnose_events(events)
        assert not [f for f in diagnostics.findings
                    if f.detector == "ping-pong-churn"]

    def test_sticky_gap_after_grace_flags(self):
        events = [META]
        for i in range(45):
            extra = ({"gap_balance": 0.25, "gap_packed": 0.1}
                     if i % 10 == 0 else {})
            events.append(sample(i, **extra))
        diagnostics = diagnose_events(events)
        findings = [f for f in diagnostics.findings
                    if f.detector == "misplacement-gap"]
        assert findings and findings[0].severity == "critical"
        assert diagnostics.summary.misplacement_gap_last == (
            pytest.approx(0.25))

    def test_shrinking_gap_is_clean(self):
        events = [META]
        gaps = iter([0.3, 0.2, 0.1, 0.01, 0.005])
        for i in range(45):
            extra = {}
            if i % 10 == 0:
                gap = next(gaps)
                extra = {"gap_balance": gap, "gap_packed": gap}
            events.append(sample(i, **extra))
        diagnostics = diagnose_events(events)
        assert not [f for f in diagnostics.findings
                    if f.detector == "misplacement-gap"]


class TestRenderings:
    def trace(self):
        events = [META]
        for i in range(3):
            extra = ({"gap_balance": 0.12, "gap_packed": 0.02}
                     if i == 0 else {})
            events.append(sample(i, ping_pong_pages=1,
                                 wasted_bytes=4096, **extra))
        events.append({"type": "tpp_promotion", "time_s": 0.0,
                       "n_faults": 9, "n_hot": 4, "n_promoted": 4,
                       "n_demoted": 2, "hot_ttf_ns": 1000.0})
        return events

    def test_report_renders_placement_section(self):
        text = format_summary(summarize_events(self.trace()))
        assert "-- placement --" in text
        assert "3 (1 audited)" in text
        assert "gap vs latency-balance" in text
        assert "4 page(s) promoted, 2 queued for kswapd demotion" in text

    def test_report_without_samples_has_no_section(self):
        text = format_summary(summarize_events([META]))
        assert "-- placement --" not in text

    def test_chrome_trace_tracks(self):
        out = chrome_trace_events(self.trace())
        names = {e["name"] for e in out}
        assert "tier occupancy (bytes)" in names
        assert "hottest-decile bytes" in names
        assert "migration flow" in names
        assert "misplacement gap" in names
        assert "ping-pong churn" in names
        flow = [e for e in out if e["name"] == "migration flow"][0]
        assert flow["args"]["t0->t1"] == 4096
        assert flow["args"]["t1->t0"] == 8192
