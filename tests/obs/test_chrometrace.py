"""Chrome Trace Event Format export: structural validity and content."""

import json

from repro.obs.chrometrace import (
    PID_SIMULATED,
    PID_WALL,
    chrome_trace_events,
    export_chrome_trace,
    profiler_chrome_events,
)
from repro.obs.profile import PhaseProfiler

META = {"type": "run_start", "time_s": 0.0, "system": "hemem+colloid",
        "workload": "gups", "n_tiers": 2, "quantum_ms": 10.0,
        "migration_limit_bytes": 1 << 20}

#: Every Trace Event Format phase type this exporter may emit.
_VALID_PHASES = {"X", "i", "C", "M"}


def sample_events():
    events = [META]
    for i in range(3):
        time_s = round(i * 0.01, 6)
        events.append({"type": "solver_converged", "time_s": time_s,
                       "iterations": 5, "latencies_ns": [150.0, 100.0],
                       "app_read_rate": 1.0, "measured_p": 0.5,
                       "cached": False})
        events.append({"type": "compute_shift", "time_s": time_s,
                       "p": 0.5 + 0.05 * i, "p_lo": 0.0, "p_hi": 1.0,
                       "dp": 0.0, "latency_default_ns": 150.0,
                       "latency_alternate_ns": 100.0})
        events.append({"type": "migration_executed", "time_s": time_s,
                       "planned_moves": 1, "planned_bytes": 256,
                       "executed_bytes": 256, "budget_bytes": 256,
                       "moves_applied": 1, "moves_skipped": 0,
                       "moves_deferred": 0})
        events.append({"type": "phase_timing", "time_s": time_s,
                       "phases": {"solve": 1000, "migrate": 500}})
    events.append({"type": "watermark_reset", "time_s": 0.01,
                   "side": "lo", "p": 0.4, "resets": 1})
    events.append({"type": "workload_shift", "time_s": 0.02,
                   "epoch": 1})
    events.append({"type": "contention_change", "time_s": 0.02,
                   "intensity": 2, "previous": 0, "epoch": 2})
    events.append({"type": "invariant_violation", "time_s": 0.02,
                   "invariant": "capacity", "message": "tier over"})
    return events


def assert_valid_trace_event(event):
    """Assert one dict obeys the Trace Event Format contract."""
    assert event["ph"] in _VALID_PHASES
    assert isinstance(event["name"], str) and event["name"]
    assert isinstance(event["pid"], int)
    assert isinstance(event["tid"], int)
    if event["ph"] != "M":
        assert isinstance(event["ts"], (int, float))
        assert event["ts"] >= 0
    if event["ph"] == "X":
        assert isinstance(event["dur"], (int, float))
        assert event["dur"] >= 0
    if event["ph"] == "i":
        assert event["s"] in {"t", "p", "g"}
    if event["ph"] == "C":
        assert all(isinstance(v, (int, float))
                   for v in event["args"].values())


class TestChromeTraceEvents:
    def test_every_event_is_valid(self):
        for event in chrome_trace_events(sample_events()):
            assert_valid_trace_event(event)

    def test_has_both_process_metadata(self):
        events = chrome_trace_events(sample_events())
        meta_pids = {e["pid"] for e in events if e["ph"] == "M"}
        assert meta_pids == {PID_SIMULATED, PID_WALL}

    def test_quantum_spans_cover_all_quanta(self):
        events = chrome_trace_events(sample_events())
        spans = [e for e in events if e["ph"] == "X"
                 and e["pid"] == PID_SIMULATED]
        assert [s["name"] for s in spans] == \
            ["quantum 0", "quantum 1", "quantum 2"]
        assert all(s["dur"] == 10_000 for s in spans)  # 10ms quanta

    def test_markers_present(self):
        names = {e["name"] for e in chrome_trace_events(sample_events())
                 if e["ph"] == "i"}
        assert "watermark reset (lo)" in names
        assert "hot-set shift" in names
        assert "contention change" in names
        assert any(n.startswith("invariant violation") for n in names)

    def test_counter_tracks_present(self):
        counters = {e["name"]
                    for e in chrome_trace_events(sample_events())
                    if e["ph"] == "C"}
        assert {"loaded latency (ns)", "p (default-tier share)",
                "migration bytes"} <= counters

    def test_wall_phase_spans_laid_end_to_end(self):
        events = chrome_trace_events(sample_events())
        wall = [e for e in events
                if e["ph"] == "X" and e["pid"] == PID_WALL]
        assert len(wall) == 6  # 3 quanta x 2 phases
        for prev, cur in zip(wall, wall[1:]):
            assert cur["ts"] >= prev["ts"]


class TestExport:
    def test_export_writes_json_object_format(self, tmp_path):
        path = export_chrome_trace(sample_events(),
                                   tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        for event in payload["traceEvents"]:
            assert_valid_trace_event(event)


class TestProfilerExport:
    def test_spans_export_with_depth_and_origin(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.span("step"):
            with profiler.span("solve"):
                pass
        events = profiler_chrome_events(profiler)
        for event in events:
            assert_valid_trace_event(event)
        spans = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["step", "solve"]
        assert spans[0]["args"]["depth"] == 0
        assert spans[1]["args"]["depth"] == 1
        assert spans[0]["ts"] == 0  # origin-relative timestamps

    def test_unclosed_span_flagged(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.push("dangling")
        events = profiler_chrome_events(profiler)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["args"].get("unclosed") is True
