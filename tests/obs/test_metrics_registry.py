"""Tests for the fleet metrics registry (repro.obs.metrics)."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics_enabled,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        counter = Counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_set_and_set_max(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set_max(2.0)
        assert gauge.value == 3.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0


class TestHistogramBuckets:
    """The fixed-log-bucket boundary semantics: bucket i covers
    [start * factor**i, start * factor**(i+1)), half-open."""

    def make(self, start=1.0, factor=2.0, n_buckets=4):
        return Histogram("h", start=start, factor=factor,
                         n_buckets=n_buckets)

    def test_underflow(self):
        hist = self.make()
        assert hist.bucket_index(0.999) == -1
        assert hist.bucket_index(0.0) == -1
        hist.observe(0.5)
        assert hist.underflow == 1
        assert sum(hist.counts) == 0

    def test_overflow(self):
        hist = self.make()  # top edge = 1 * 2**4 = 16
        assert hist.bucket_index(16.0) == 4
        assert hist.bucket_index(1e300) == 4
        hist.observe(16.0)
        assert hist.overflow == 1

    def test_exact_lower_edges_belong_to_their_bucket(self):
        hist = self.make()
        for i, edge in enumerate((1.0, 2.0, 4.0, 8.0)):
            assert hist.bucket_index(edge) == i, edge

    def test_values_just_below_edges(self):
        hist = self.make()
        assert hist.bucket_index(1.9999999) == 0
        assert hist.bucket_index(3.9999999) == 1
        assert hist.bucket_index(15.9999999) == 3

    def test_observe_tracks_sum_and_count(self):
        hist = self.make()
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(104.5)

    def test_non_integer_factor_edges(self):
        # factor 1.5 exercises float-log rounding against the
        # precomputed edges.
        hist = self.make(start=50.0, factor=1.5, n_buckets=24)
        for i in range(24):
            edge = 50.0 * 1.5 ** i
            assert hist.bucket_index(edge) == i
            assert hist.bucket_index(math.nextafter(edge, 0.0)) == i - 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", start=0.0, factor=2.0, n_buckets=4)
        with pytest.raises(ConfigurationError):
            Histogram("h", start=1.0, factor=1.0, n_buckets=4)
        with pytest.raises(ConfigurationError):
            Histogram("h", start=1.0, factor=2.0, n_buckets=0)


def snap_a():
    registry = MetricsRegistry(enabled=True)
    registry.counter("cells").inc(3)
    registry.gauge("rss").set(100.0)
    hist = registry.histogram("lat", start=1.0, factor=2.0, n_buckets=4)
    hist.observe(1.5)
    hist.observe(0.2)
    return registry.snapshot()


def snap_b():
    registry = MetricsRegistry(enabled=True)
    registry.counter("cells").inc(4)
    registry.counter("extra").inc(1)
    registry.gauge("rss").set(250.0)
    hist = registry.histogram("lat", start=1.0, factor=2.0, n_buckets=4)
    hist.observe(40.0)
    return registry.snapshot()


def snap_c():
    registry = MetricsRegistry(enabled=True)
    registry.gauge("rss").set(50.0)
    hist = registry.histogram("lat", start=1.0, factor=2.0, n_buckets=4)
    hist.observe(2.0)
    hist.observe(8.0)
    return registry.snapshot()


class TestSnapshotMerge:
    def test_counters_sum_gauges_max_histograms_add(self):
        merged = snap_a().merge(snap_b())
        assert merged.counters["cells"] == 7
        assert merged.counters["extra"] == 1
        assert merged.gauges["rss"] == 250.0
        hist = merged.histograms["lat"]
        assert hist["count"] == 3
        assert hist["underflow"] == 1
        assert hist["overflow"] == 1
        assert sum(hist["counts"]) == 1

    def test_merge_associative_and_commutative(self):
        snaps = [snap_a(), snap_b(), snap_c()]
        left = snaps[0].merge(snaps[1]).merge(snaps[2])
        right = snaps[0].merge(snaps[1].merge(snaps[2]))
        folded = merge_snapshots(list(reversed(snaps)))
        assert left.to_dict() == right.to_dict()
        assert left.to_dict() == folded.to_dict()

    def test_merge_rejects_geometry_mismatch(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("lat", start=2.0, factor=2.0, n_buckets=4)
        with pytest.raises(ConfigurationError):
            snap_a().merge(registry.snapshot())

    def test_empty_merge_is_identity(self):
        snapshot = snap_a()
        merged = MetricsSnapshot().merge(snapshot)
        assert merged.to_dict() == snapshot.to_dict()


class TestSerialization:
    def test_json_round_trip(self):
        snapshot = snap_a()
        data = json.loads(snapshot.to_json())
        assert data["metrics_schema"] == METRICS_SCHEMA_VERSION
        restored = MetricsSnapshot.from_dict(data)
        assert restored.to_dict() == snapshot.to_dict()

    def test_schema_mismatch_rejected(self):
        data = snap_a().to_dict()
        data["metrics_schema"] = 999
        with pytest.raises(ConfigurationError):
            MetricsSnapshot.from_dict(data)

    def test_prometheus_text_format(self):
        text = snap_a().to_prometheus_text()
        assert "# TYPE cells counter" in text
        assert "cells 3" in text
        assert "# TYPE rss gauge" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text
        # Cumulative buckets never decrease.
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("lat_bucket")]
        assert counts == sorted(counts)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        assert registry.counter("c") is registry.counter("c")

    def test_cross_type_name_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_histogram_geometry_mismatch_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("h", start=1.0, factor=2.0, n_buckets=4)
        with pytest.raises(ConfigurationError):
            registry.histogram("h", start=1.0, factor=4.0, n_buckets=4)

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("c")
        counter.inc(5)
        hist = registry.histogram("h", start=1.0, factor=2.0, n_buckets=4)
        hist.observe(3.0)
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.value == 0
        assert hist.count == 0
        assert sum(hist.counts) == 0

    def test_absorb_accumulates_worker_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("cells").inc(1)
        registry.absorb(snap_a())
        registry.absorb(snap_b())
        snapshot = registry.snapshot()
        assert snapshot.counters["cells"] == 8
        assert snapshot.gauges["rss"] == 250.0
        assert snapshot.histograms["lat"]["count"] == 3

    def test_disabled_by_default_guard_contract(self):
        # Sites guard with `if registry.enabled:`; a fresh registry is
        # disabled so guarded sites register nothing at all.
        registry = MetricsRegistry()
        assert not registry.enabled
        if registry.enabled:  # the guard every instrumentation site uses
            registry.counter("c").inc()
        assert registry.snapshot().counters == {}


class TestEnablement:
    def test_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
        assert not metrics_enabled()
        enable_metrics()
        assert metrics_enabled()
        disable_metrics()
        assert not metrics_enabled()

    def test_falsey_values(self, monkeypatch):
        for value in ("", "0", "false", "no", "off"):
            monkeypatch.setenv(METRICS_ENV_VAR, value)
            assert not metrics_enabled()
        monkeypatch.setenv(METRICS_ENV_VAR, "1")
        assert metrics_enabled()
