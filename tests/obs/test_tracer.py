"""Tests for the tracer, counters, and phase profiler."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_SCHEMAS, TRACE_SCHEMA_VERSION, describe_schema
from repro.obs.profile import Counters, PhaseProfiler, merge_phase_events
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    iter_events,
    load_events,
)


class TestTracer:
    def test_emit_stamps_type_and_time(self):
        tracer = Tracer()
        tracer.time_s = 1.25
        tracer.emit("hemem_cooling", coolings=1, total_coolings=3)
        (event,) = tracer.events()
        assert event["type"] == "hemem_cooling"
        assert event["time_s"] == 1.25
        assert event["total_coolings"] == 3

    def test_unknown_event_type_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.emit("definitely_not_an_event")

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(ring_size=3)
        for i in range(5):
            tracer.emit("hemem_cooling", coolings=i, total_coolings=i)
        events = tracer.events()
        assert len(events) == 3
        assert [e["coolings"] for e in events] == [2, 3, 4]
        # Lifetime counts are not limited by the ring.
        assert tracer.counts == {"hemem_cooling": 5}

    def test_events_filter_by_type(self):
        tracer = Tracer()
        tracer.emit("hemem_cooling", coolings=1, total_coolings=1)
        tracer.emit("memtis_split", n_split=7)
        assert len(tracer.events("memtis_split")) == 1

    def test_rejects_bad_ring_size(self):
        with pytest.raises(ConfigurationError):
            Tracer(ring_size=0)

    def test_numpy_values_serialize(self, tmp_path):
        import numpy as np

        path = tmp_path / "t.jsonl"
        with Tracer(jsonl_path=path) as tracer:
            tracer.emit(
                "solver_converged",
                iterations=np.int64(12),
                latencies_ns=np.array([100.0, 130.0]),
                app_read_rate=np.float64(55.5),
                measured_p=0.5,
            )
        (event,) = load_events(path)
        assert event["iterations"] == 12
        assert event["latencies_ns"] == [100.0, 130.0]
        assert isinstance(event["app_read_rate"], float)

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(jsonl_path=path)
        tracer.emit("memtis_split", n_split=4)
        tracer.emit("hemem_cooling", coolings=1, total_coolings=1)
        tracer.close()
        events = load_events(path)
        assert [e["type"] for e in events] == [
            "memtis_split", "hemem_cooling",
        ]
        assert list(iter_events(events, "memtis_split"))[0]["n_split"] == 4

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_events(tmp_path / "nope.jsonl")

    def test_load_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "memtis_split"}\nnot json\n')
        with pytest.raises(ConfigurationError):
            load_events(path)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("anything_at_all", junk=1)  # no validation, no-op
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.counts == {}
        NULL_TRACER.close()

    def test_context_manager(self):
        with NullTracer() as tracer:
            tracer.emit("hemem_cooling")


class TestSchema:
    def test_every_type_documented(self):
        for etype, fields in EVENT_SCHEMAS.items():
            assert fields, f"{etype} has no documented fields"

    def test_describe_schema_lists_all_types(self):
        text = describe_schema()
        assert f"trace schema v{TRACE_SCHEMA_VERSION}" in text
        for etype in EVENT_SCHEMAS:
            assert etype in text


class TestCounters:
    def test_inc_and_get(self):
        counters = Counters()
        counters.inc("quanta")
        counters.inc("quanta", 4)
        assert counters.get("quanta") == 5
        assert counters.get("missing") == 0
        assert counters.snapshot() == {"quanta": 5}


class TestPhaseProfiler:
    def test_disabled_laps_return_zero(self):
        profiler = PhaseProfiler(enabled=False)
        profiler.start()
        assert profiler.lap("solve") == 0
        assert profiler.summary() == {}

    def test_enabled_accumulates(self):
        profiler = PhaseProfiler(enabled=True)
        for __ in range(3):
            profiler.start()
            sum(range(1000))
            profiler.lap("work")
        summary = profiler.summary()
        assert summary["work"]["count"] == 3
        assert summary["work"]["total_ns"] > 0
        assert summary["work"]["mean_ns"] == pytest.approx(
            summary["work"]["total_ns"] / 3
        )

    def test_format_summary_has_shares(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.start()
        profiler.lap("a")
        text = profiler.format_summary()
        assert "a" in text and "share" in text

    def test_reset_clears(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.start()
        profiler.lap("a")
        profiler.reset()
        assert profiler.summary() == {}

    def test_merge_phase_events(self):
        merged = merge_phase_events([
            {"type": "phase_timing", "phases": {"a": 10, "b": 5}},
            {"type": "phase_timing", "phases": {"a": 2}},
        ])
        assert merged == {"a": 12, "b": 5}

    def test_merge_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            merge_phase_events([{"type": "phase_timing"}])


class TestLoopIntegration:
    def test_traced_run_emits_expected_types(self, small_machine,
                                             tmp_path):
        from repro.core.integrate import HememColloidSystem
        from repro.runtime.loop import SimulationLoop
        from repro.workloads.gups import GupsWorkload
        from tests.conftest import FAST_SCALE

        path = tmp_path / "run.jsonl"
        tracer = Tracer(jsonl_path=path)
        loop = SimulationLoop(
            machine=small_machine,
            workload=GupsWorkload(scale=FAST_SCALE, seed=5),
            system=HememColloidSystem(),
            contention=3,
            seed=5,
            tracer=tracer,
            profile=True,
        )
        loop.run(duration_s=0.5)
        tracer.close()
        types = {e["type"] for e in load_events(path)}
        assert {"run_start", "solver_converged", "compute_shift",
                "watermark_reset", "migration_executed",
                "phase_timing"} <= types
        meta = tracer.events("run_start") or [
            e for e in load_events(path) if e["type"] == "run_start"
        ]
        assert meta[0]["system"] == "hemem+colloid"

    def test_untraced_run_identical_to_traced(self, small_machine):
        """Tracing must observe, never perturb, the simulation."""
        from repro.runtime.loop import SimulationLoop
        from repro.tiering.hemem import HememSystem
        from repro.workloads.gups import GupsWorkload
        from tests.conftest import FAST_SCALE

        def run(tracer):
            loop = SimulationLoop(
                machine=small_machine,
                workload=GupsWorkload(scale=FAST_SCALE, seed=9),
                system=HememSystem(),
                contention=2,
                seed=9,
                tracer=tracer,
            )
            return loop.run(duration_s=0.3)

        plain = run(None)
        traced = run(Tracer())
        assert plain.throughput.tolist() == traced.throughput.tolist()
        assert plain.migration_bytes.tolist() == (
            traced.migration_bytes.tolist()
        )


class TestGzipTraces:
    def events_round_trip(self, path):
        with Tracer(jsonl_path=path) as tracer:
            tracer.time_s = 0.5
            tracer.emit("hemem_cooling", coolings=1, total_coolings=1)
            tracer.emit("hemem_cooling", coolings=2, total_coolings=3)
        return load_events(path)

    def test_gz_suffix_writes_gzip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        events = self.events_round_trip(path)
        # Really compressed on disk, not just renamed.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert [e["coolings"] for e in events] == [1, 2]
        assert events[0]["time_s"] == 0.5

    def test_renamed_gzip_still_loads(self, tmp_path):
        gz = tmp_path / "trace.jsonl.gz"
        self.events_round_trip(gz)
        renamed = tmp_path / "trace.jsonl"
        renamed.write_bytes(gz.read_bytes())
        events = load_events(renamed)
        assert [e["coolings"] for e in events] == [1, 2]

    def test_plain_file_named_gz_still_loads(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        self.events_round_trip(plain)
        disguised = tmp_path / "disguised.jsonl.gz"
        disguised.write_bytes(plain.read_bytes())
        assert [e["coolings"] for e in load_events(disguised)] == [1, 2]

    def test_gzip_matches_plain_content(self, tmp_path):
        plain = self.events_round_trip(tmp_path / "a.jsonl")
        compressed = self.events_round_trip(tmp_path / "b.jsonl.gz")
        assert plain == compressed


class TestTenantTracer:
    def test_labels_every_event(self):
        from repro.obs.tracer import TenantTracer

        tracer = Tracer(ring_size=16)
        view = TenantTracer(tracer, "gups")
        tracer.time_s = 0.5
        view.emit("compute_shift", p=0.5, p_lo=0.0, p_hi=1.0, dp=0.01,
                  latency_default_ns=300.0, latency_alternate_ns=150.0)
        (event,) = tracer.events()
        assert event["tenant"] == "gups"
        assert event["type"] == "compute_shift"
        assert event["time_s"] == 0.5

    def test_underlying_events_stay_unlabeled(self):
        from repro.obs.tracer import TenantTracer

        tracer = Tracer(ring_size=16)
        TenantTracer(tracer, "gups")  # label only through the view
        tracer.emit("contention_change", intensity=2)
        (event,) = tracer.events()
        assert "tenant" not in event

    def test_delegates_enabled_and_time(self):
        from repro.obs.tracer import TenantTracer

        view = TenantTracer(NULL_TRACER, "gups")
        assert not view.enabled
        view.emit("contention_change", intensity=1)  # inert, no error
