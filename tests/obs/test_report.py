"""Tests for the trace-report subsystem."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.report import (
    format_summary,
    report_from_file,
    summarize_events,
)


def shift_event(time_s, dp, l_d=300.0, l_a=150.0, p_lo=0.0, p_hi=1.0,
                p=0.5):
    return {"type": "compute_shift", "time_s": time_s, "p": p,
            "p_lo": p_lo, "p_hi": p_hi, "dp": dp,
            "latency_default_ns": l_d, "latency_alternate_ns": l_a}


def migration_event(time_s, planned, executed, deferred=0, skipped=0):
    return {"type": "migration_executed", "time_s": time_s,
            "planned_moves": 4, "planned_bytes": planned,
            "executed_bytes": executed, "budget_bytes": executed,
            "moves_applied": 2, "moves_skipped": skipped,
            "moves_deferred": deferred}


META = {"type": "run_start", "time_s": 0.0, "system": "hemem+colloid",
        "workload": "gups", "n_tiers": 2, "quantum_ms": 10.0,
        "migration_limit_bytes": 1 << 20}


class TestSummarize:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_events([])

    def test_convergence_time_and_quantum(self):
        events = [META,
                  shift_event(0.00, dp=0.2),
                  shift_event(0.01, dp=0.1),
                  shift_event(0.02, dp=0.0, l_d=150.0),
                  shift_event(0.03, dp=0.0, l_d=150.0)]
        summary = summarize_events(events)
        assert summary.convergence_time_s == pytest.approx(0.02)
        assert summary.convergence_quantum == 2

    def test_never_converged(self):
        events = [META, shift_event(0.0, dp=0.1), shift_event(0.01, dp=0.1)]
        summary = summarize_events(events)
        assert summary.convergence_time_s is None
        assert summary.convergence_quantum is None

    def test_always_balanced_converges_immediately(self):
        events = [META, shift_event(0.05, dp=0.0), shift_event(0.06, dp=0.0)]
        summary = summarize_events(events)
        assert summary.convergence_time_s == pytest.approx(0.05)

    def test_latency_balance_error_uses_tail(self):
        # Tail = last quarter of 8 events = the last 2 (l_d=200, l_a=100).
        events = [META]
        events += [shift_event(i / 100, dp=0.1, l_d=1000.0, l_a=100.0)
                   for i in range(6)]
        events += [shift_event((6 + i) / 100, dp=0.1, l_d=200.0,
                               l_a=100.0) for i in range(2)]
        summary = summarize_events(events)
        assert summary.latency_balance_error == pytest.approx(0.5)

    def test_migration_efficiency(self):
        events = [META,
                  migration_event(0.0, planned=100, executed=60,
                                  deferred=2),
                  migration_event(0.01, planned=100, executed=100)]
        summary = summarize_events(events)
        assert summary.planned_bytes == 200
        assert summary.executed_bytes == 160
        assert summary.migration_efficiency == pytest.approx(0.8)
        assert summary.clipped_quanta == 1
        assert summary.moves_deferred == 2

    def test_init_resets_not_counted_as_dynamic(self):
        events = [META,
                  {"type": "watermark_reset", "time_s": 0.0,
                   "side": "init", "p": 0.5, "resets": 0},
                  {"type": "watermark_reset", "time_s": 0.5,
                   "side": "hi", "p": 0.2, "resets": 1}]
        summary = summarize_events(events)
        assert summary.watermark_resets == 1
        assert summary.event_counts["watermark_reset"] == 2

    def test_phase_totals_merged(self):
        events = [META,
                  {"type": "phase_timing", "time_s": 0.0,
                   "phases": {"equilibrium_solve": 100, "other": 10}},
                  {"type": "phase_timing", "time_s": 0.01,
                   "phases": {"equilibrium_solve": 50}}]
        summary = summarize_events(events)
        assert summary.phase_totals_ns["equilibrium_solve"] == 150

    def test_unknown_kinds_skipped_and_counted(self):
        # A trace written by newer code must still summarize.
        events = [META, shift_event(0.0, dp=0.0),
                  {"type": "future_event", "time_s": 0.0, "x": 1},
                  {"type": "future_event", "time_s": 0.01, "x": 2},
                  {"type": "other_future", "time_s": 0.01}]
        summary = summarize_events(events)
        assert summary.unknown_event_counts == \
            {"future_event": 2, "other_future": 1}
        assert summary.convergence_time_s is not None
        text = format_summary(summary)
        assert "unknown kinds : 3 event(s) skipped" in text
        assert "future_event=2" in text

    def test_malformed_phase_timing_skipped_and_counted(self):
        events = [META,
                  {"type": "phase_timing", "time_s": 0.0,
                   "phases": {"equilibrium_solve": 100}},
                  {"type": "phase_timing", "time_s": 0.01,
                   "phases": "not-a-mapping"},
                  {"type": "phase_timing", "time_s": 0.02}]
        summary = summarize_events(events)
        assert summary.malformed_events == 2
        assert summary.phase_totals_ns == {"equilibrium_solve": 100}
        assert "malformed     : 2 event(s) skipped" in \
            format_summary(summary)

    def test_clean_trace_reports_no_skips(self):
        summary = summarize_events([META, shift_event(0.0, dp=0.0)])
        assert summary.unknown_event_counts == {}
        assert summary.malformed_events == 0
        text = format_summary(summary)
        assert "unknown kinds" not in text
        assert "malformed" not in text


class TestFormat:
    def test_report_sections_present(self):
        events = [META,
                  shift_event(0.00, dp=0.2),
                  shift_event(0.01, dp=0.0, l_d=150.0),
                  migration_event(0.0, planned=100, executed=80,
                                  deferred=1),
                  {"type": "phase_timing", "time_s": 0.0,
                   "phases": {"equilibrium_solve": 1000}}]
        text = format_summary(summarize_events(events))
        assert "convergence" in text
        assert "converged at  : 0.010 s (quantum 1)" in text
        assert "migration efficiency" in text
        assert "80.0% of planned" in text
        assert "phase-time breakdown" in text
        assert "equilibrium_solve" in text

    def test_report_without_optional_sections(self):
        text = format_summary(summarize_events([META]))
        assert "no compute_shift events" in text
        assert "no migrations planned" in text
        assert "--profile" in text


class TestEndToEnd:
    def test_traced_loop_report(self, small_machine, tmp_path):
        from repro.core.integrate import HememColloidSystem
        from repro.obs.tracer import Tracer
        from repro.runtime.loop import SimulationLoop
        from repro.workloads.gups import GupsWorkload
        from tests.conftest import FAST_SCALE

        path = tmp_path / "trace.jsonl"
        with Tracer(jsonl_path=path) as tracer:
            loop = SimulationLoop(
                machine=small_machine,
                workload=GupsWorkload(scale=FAST_SCALE, seed=11),
                system=HememColloidSystem(),
                contention=3,
                seed=11,
                tracer=tracer,
                profile=True,
            )
            loop.run(duration_s=0.5)
        text = report_from_file(path)
        assert "hemem+colloid / gups" in text
        assert "phase-time breakdown" in text
        assert "equilibrium_solve" in text
        assert "migration efficiency" in text


class TestRunEndAndProgress:
    def test_run_end_counters_parsed_and_rendered(self):
        events = [META,
                  {"type": "run_end", "time_s": 0.5, "simulated_s": 0.5,
                   "n_quanta": 50,
                   "counters": {"quanta": 50, "migrated_bytes": 4096}}]
        summary = summarize_events(events)
        assert summary.runtime_counters == {"quanta": 50,
                                            "migrated_bytes": 4096}
        text = format_summary(summary)
        assert "runtime counters" in text
        assert "quanta" in text
        assert "4,096" in text

    def test_last_run_end_wins(self):
        events = [META,
                  {"type": "run_end", "time_s": 0.1, "simulated_s": 0.1,
                   "n_quanta": 10, "counters": {"quanta": 10}},
                  {"type": "run_end", "time_s": 0.5, "simulated_s": 0.5,
                   "n_quanta": 50, "counters": {"quanta": 50}}]
        assert summarize_events(events).runtime_counters == {"quanta": 50}

    def test_fleet_progress_parsed_and_rendered(self):
        events = [META,
                  {"type": "run_progress", "time_s": 0.0, "completed": 3,
                   "total": 12, "label": "hemem i0",
                   "wall_elapsed_s": 6.0, "cells_per_s": 0.5,
                   "eta_s": 18.0}]
        summary = summarize_events(events)
        assert summary.fleet_progress["completed"] == 3
        assert summary.fleet_progress["total"] == 12
        text = format_summary(summary)
        assert "fleet progress" in text
        assert "3/12" in text

    def test_no_run_end_sections_absent(self):
        summary = summarize_events([META])
        assert summary.runtime_counters == {}
        assert summary.fleet_progress is None
        text = format_summary(summary)
        assert "runtime counters" not in text
        assert "fleet progress" not in text

    def test_fleet_faults_parsed_and_rendered(self):
        events = [
            META,
            {"type": "cell_retried", "time_s": 0.0, "label": "hemem i0",
             "attempt": 0, "error_type": "InjectedCrash",
             "error": "injected crash", "backoff_s": 0.1},
            {"type": "cell_retried", "time_s": 0.1, "label": "hemem i1",
             "attempt": 0, "error_type": "InjectedCrash",
             "error": "injected crash", "backoff_s": 0.1},
            {"type": "cell_failed", "time_s": 0.2, "label": "hemem i0",
             "attempts": 2, "error_type": "InjectedCrash",
             "error": "injected crash"},
        ]
        summary = summarize_events(events)
        assert summary.cell_retries == 2
        assert len(summary.cell_failures) == 1
        assert summary.cell_failures[0]["attempts"] == 2
        text = format_summary(summary)
        assert "fleet faults" in text
        assert "cell retries  : 2" in text
        assert "hemem i0: InjectedCrash after 2 attempt(s)" in text

    def test_no_faults_section_absent(self):
        summary = summarize_events([META])
        assert summary.cell_retries == 0
        assert summary.cell_failures == []
        assert "fleet faults" not in format_summary(summary)

    def test_loop_emit_run_end(self, small_machine):
        from repro.obs.tracer import Tracer
        from repro.runtime.loop import SimulationLoop
        from repro.tiering.hemem import HememSystem
        from repro.workloads.gups import GupsWorkload
        from tests.conftest import FAST_SCALE

        tracer = Tracer()
        loop = SimulationLoop(
            machine=small_machine,
            workload=GupsWorkload(scale=FAST_SCALE, seed=3),
            system=HememSystem(),
            contention=1,
            seed=3,
            tracer=tracer,
        )
        loop.run(duration_s=0.3)
        loop.emit_run_end()
        (event,) = tracer.events("run_end")
        assert event["n_quanta"] == len(loop.metrics)
        assert event["simulated_s"] == pytest.approx(loop.time_s)
        assert event["counters"]["quanta"] == len(loop.metrics)
        assert event["counters"]["migrated_bytes"] >= 0


class TestTenantViews:
    def events(self):
        return [
            dict(META),
            {**shift_event(0.1, 0.02), "tenant": "a"},
            {**shift_event(0.1, 0.01), "tenant": "b"},
            {**migration_event(0.2, 100, 100), "tenant": "a"},
            {**shift_event(0.3, 0.0), "tenant": "a"},
        ]

    def test_tenant_names_in_first_appearance_order(self):
        from repro.obs.report import tenant_names_of

        assert tenant_names_of(self.events()) == ["a", "b"]
        assert tenant_names_of([dict(META)]) == []

    def test_tenant_view_keeps_own_and_unlabeled_events(self):
        from repro.obs.report import tenant_view

        view = tenant_view(self.events(), "a")
        assert len(view) == 4  # run_start + 3 'a' events
        assert all(e.get("tenant", "a") == "a" for e in view)
        view_b = tenant_view(self.events(), "b")
        assert len(view_b) == 2

    def test_per_tenant_summaries_differ(self):
        from repro.obs.report import tenant_view

        events = self.events()
        summary_a = summarize_events(tenant_view(events, "a"))
        summary_b = summarize_events(tenant_view(events, "b"))
        assert sum(summary_a.event_counts.values()) == 4
        assert sum(summary_b.event_counts.values()) == 2
