"""Timeline folding: grouping, tolerance, and epoch segmentation."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.timeline import build_timeline

META = {"type": "run_start", "time_s": 0.0, "system": "hemem+colloid",
        "workload": "gups", "n_tiers": 2, "quantum_ms": 10.0,
        "migration_limit_bytes": 1 << 20}


def quantum_events(time_s, p=0.5, l_d=200.0, l_a=100.0,
                   iterations=5, cached=False, executed=0):
    return [
        {"type": "solver_converged", "time_s": time_s,
         "iterations": iterations, "latencies_ns": [l_d, l_a],
         "app_read_rate": 1.0, "measured_p": p, "cached": cached},
        {"type": "compute_shift", "time_s": time_s, "p": p,
         "p_lo": 0.0, "p_hi": 1.0, "dp": 0.1,
         "latency_default_ns": l_d, "latency_alternate_ns": l_a},
        {"type": "migration_executed", "time_s": time_s,
         "planned_moves": 1, "planned_bytes": executed,
         "executed_bytes": executed, "budget_bytes": executed,
         "moves_applied": 1, "moves_skipped": 0, "moves_deferred": 0},
    ]


class TestFolding:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            build_timeline([])

    def test_groups_by_quantum_timestamp(self):
        events = [META]
        events += quantum_events(0.00, p=0.5, executed=100)
        events += quantum_events(0.01, p=0.6, executed=200)
        timeline = build_timeline(events)
        assert timeline.n_quanta == 2
        assert timeline.quantum_s == pytest.approx(0.01)
        first, second = timeline.samples
        assert first.index == 0 and second.index == 1
        assert first.p == pytest.approx(0.5)
        assert second.executed_bytes == 200
        assert first.latencies_ns == (200.0, 100.0)
        assert first.solver_iterations == 5

    def test_imbalance_property(self):
        events = [META] + quantum_events(0.0, l_d=150.0, l_a=100.0)
        sample = build_timeline(events).samples[0]
        assert sample.imbalance == pytest.approx(0.5)

    def test_unknown_kinds_counted_not_fatal(self):
        events = [META] + quantum_events(0.0)
        events.append({"type": "from_the_future", "time_s": 0.0,
                       "payload": 1})
        timeline = build_timeline(events)
        assert timeline.unknown_event_counts == {"from_the_future": 1}
        assert timeline.n_quanta == 1

    def test_malformed_fields_skipped_not_fatal(self):
        events = [META]
        events.append({"type": "solver_converged", "time_s": 0.0,
                       "iterations": "not-a-number"})
        events += quantum_events(0.0)
        timeline = build_timeline(events)
        # The malformed event contributes nothing; the clean ones fold.
        assert timeline.samples[0].p == pytest.approx(0.5)

    def test_init_reset_recorded_but_not_dynamic(self):
        events = [META]
        events.append({"type": "watermark_reset", "time_s": 0.0,
                       "side": "init", "p": 0.5, "resets": 0})
        events += quantum_events(0.0)
        events.append({"type": "watermark_reset", "time_s": 0.01,
                       "side": "lo", "p": 0.4, "resets": 1})
        events += quantum_events(0.01)
        timeline = build_timeline(events)
        assert timeline.samples[0].reset_sides == ("init",)
        assert timeline.samples[0].watermark_resets == 0
        assert timeline.samples[1].watermark_resets == 1

    def test_run_end_counters_lifted(self):
        events = [META] + quantum_events(0.0)
        events.append({"type": "run_end", "time_s": 0.01,
                       "simulated_s": 0.01, "n_quanta": 1,
                       "counters": {"quanta": 1}})
        timeline = build_timeline(events)
        assert timeline.runtime_counters == {"quanta": 1}


class TestEpochs:
    def test_single_epoch_without_shifts(self):
        events = [META]
        for i in range(3):
            events += quantum_events(i * 0.01)
        timeline = build_timeline(events)
        assert len(timeline.epochs) == 1
        assert timeline.epochs[0].n_quanta == 3

    def test_workload_shift_opens_epoch(self):
        events = [META]
        for i in range(4):
            events += quantum_events(i * 0.01)
        events.append({"type": "workload_shift", "time_s": 0.02,
                       "epoch": 1})
        timeline = build_timeline(events)
        assert [(e.start, e.stop) for e in timeline.epochs] == \
            [(0, 2), (2, 4)]
        assert timeline.epoch_samples(timeline.epochs[1])[0].index == 2

    def test_contention_change_opens_epoch(self):
        events = [META]
        for i in range(4):
            events += quantum_events(i * 0.01)
        events.append({"type": "contention_change", "time_s": 0.03,
                       "intensity": 2, "previous": 0, "epoch": 1})
        timeline = build_timeline(events)
        assert [(e.start, e.stop) for e in timeline.epochs] == \
            [(0, 3), (3, 4)]
        boundary = timeline.samples[3]
        assert boundary.contention_change
        assert boundary.contention == 2
        assert boundary.epoch_boundary
