"""Tests for the Zipf utilities and the §5.3 application workloads."""

import numpy as np
import pytest

import networkx as nx

from repro.errors import ConfigurationError
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.silo import SiloYcsbWorkload
from repro.workloads.zipf import harmonic_partial, zipf_page_probabilities


class TestZipf:
    def test_harmonic_matches_explicit_sum(self):
        for theta in (0.5, 0.99, 1.3):
            for x in (10, 100, 1000):
                explicit = sum(k ** -theta for k in range(1, x + 1))
                approx = float(harmonic_partial(np.array([x]), theta)[0])
                assert approx == pytest.approx(explicit, rel=0.01), (
                    theta, x,
                )

    def test_page_probabilities_normalized(self):
        probs = zipf_page_probabilities(10**6, 0.99, 1000)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_rank_order_without_shuffle(self):
        probs = zipf_page_probabilities(10**6, 0.99, 100,
                                        shuffle_seed=None)
        assert probs[0] == probs.max()
        assert (np.diff(probs) <= 1e-12).all()

    def test_shuffle_scatters_hot_pages(self):
        probs = zipf_page_probabilities(10**6, 0.99, 1000, shuffle_seed=1)
        assert int(np.argmax(probs)) != 0 or probs[0] != probs.max()

    def test_matches_exact_small_case(self):
        """Aggregated masses equal explicit per-item sums for small n."""
        n_items, n_pages = 1000, 10
        probs = zipf_page_probabilities(n_items, 0.99, n_pages,
                                        shuffle_seed=None)
        items = np.arange(1, n_items + 1, dtype=float) ** -0.99
        exact = items.reshape(n_pages, -1).sum(axis=1)
        exact = exact / exact.sum()
        np.testing.assert_allclose(probs, exact, rtol=0.02)

    def test_skew_increases_with_theta(self):
        flat = zipf_page_probabilities(10**6, 0.2, 100, shuffle_seed=None)
        skewed = zipf_page_probabilities(10**6, 1.2, 100,
                                         shuffle_seed=None)
        assert skewed[0] > flat[0]

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            zipf_page_probabilities(0, 0.99, 10)
        with pytest.raises(ConfigurationError):
            zipf_page_probabilities(5, 0.99, 10)
        with pytest.raises(ConfigurationError):
            zipf_page_probabilities(100, -0.5, 10)


class TestGraphWorkload:
    def test_synthetic_is_skewed(self):
        workload = GraphWorkload.synthetic(scale=0.05)
        probs = workload.access_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        top_1pct = np.sort(probs)[::-1][:max(1, len(probs) // 100)].sum()
        assert top_1pct > 0.02  # heavy-tail mass in the hottest pages

    def test_from_networkx(self):
        graph = nx.barabasi_albert_graph(2000, 3, seed=1)
        workload = GraphWorkload.from_networkx(graph, page_bytes=4096,
                                               bytes_per_vertex=16)
        probs = workload.access_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert workload.n_pages == int(np.ceil(2000 / (4096 // 16)))

    def test_hub_pages_hotter_in_real_graph(self):
        graph = nx.barabasi_albert_graph(4096, 2, seed=2)
        workload = GraphWorkload.from_networkx(graph, page_bytes=1024,
                                               bytes_per_vertex=16)
        probs = workload.access_probabilities()
        # BA graphs put the hubs among the earliest nodes.
        assert probs[0] > np.median(probs)

    def test_rejects_degenerate_mass(self):
        with pytest.raises(ConfigurationError):
            GraphWorkload(np.array([1.0]), 4096)
        with pytest.raises(ConfigurationError):
            GraphWorkload(np.array([-1.0, 1.0]), 4096)

    def test_read_heavy_core_group(self):
        workload = GraphWorkload.synthetic(scale=0.05)
        assert workload.core_group().read_fraction > 0.7


class TestSiloWorkload:
    def test_geometry(self):
        workload = SiloYcsbWorkload(scale=0.05)
        assert workload.access_probabilities().sum() == pytest.approx(1.0)
        assert workload.n_pages >= 2

    def test_read_only(self):
        assert SiloYcsbWorkload(scale=0.05).core_group(
        ).read_fraction == 1.0

    def test_zipfian_skew_visible(self):
        probs = SiloYcsbWorkload(scale=0.05).access_probabilities()
        assert probs.max() > 3 * probs.mean()

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            SiloYcsbWorkload(scale=0.0)


class TestCacheLibWorkload:
    def test_geometry(self):
        workload = CacheLibWorkload(scale=0.05)
        probs = workload.access_probabilities()
        assert probs.sum() == pytest.approx(1.0)

    def test_get_update_mix(self):
        group = CacheLibWorkload(scale=0.05).core_group()
        assert group.read_fraction == pytest.approx(0.9)

    def test_large_values_boost_parallelism(self):
        """4 KB values put CacheLib in the Figure 8 large-object regime."""
        cachelib = CacheLibWorkload(scale=0.05).core_group()
        assert cachelib.mlp > 7.0
        assert cachelib.randomness < 1.0

    def test_hot_slab_mask(self):
        workload = CacheLibWorkload(scale=0.05)
        mask = workload.hot_mask()
        assert mask is not None
        # ~20% of pages hold the clustered hot slabs.
        assert 0.1 < mask.mean() < 0.3
        probs = workload.access_probabilities()
        # Hot slabs carry most of the access mass (clustered 0.9 * 0.85).
        assert probs[mask].sum() > 0.6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CacheLibWorkload(hot_key_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CacheLibWorkload(hot_probability=1.5)
