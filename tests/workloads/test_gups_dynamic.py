"""Tests for the GUPS workload and dynamic wrappers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import gib, mib
from repro.workloads.dynamic import HotSetShiftWorkload
from repro.workloads.gups import GupsWorkload


class TestGups:
    def test_paper_geometry(self):
        gups = GupsWorkload()
        assert gups.working_set_bytes == gib(72)
        assert gups.hot_bytes == gib(24)
        assert gups.n_pages == gib(72) // mib(2)

    def test_probabilities_sum_to_one(self):
        gups = GupsWorkload(scale=0.05)
        assert gups.access_probabilities().sum() == pytest.approx(1.0)

    def test_hot_set_carries_hot_probability_plus_tail(self):
        gups = GupsWorkload(scale=0.05, hot_probability=0.9)
        probs = gups.access_probabilities()
        hot = gups.hot_mask()
        # Hot pages get 0.9 plus their share of the uniform 0.1 tail
        # (the 10% tail is over the full working set, §2.1).
        hot_share = probs[hot].sum()
        expected = 0.9 + 0.1 * hot.sum() / gups.n_pages
        assert hot_share == pytest.approx(expected, rel=1e-9)

    def test_hot_region_is_contiguous(self):
        gups = GupsWorkload(scale=0.05)
        hot_idx = np.nonzero(gups.hot_mask())[0]
        assert (np.diff(hot_idx) == 1).all()

    def test_reshuffle_moves_hot_region(self):
        gups = GupsWorkload(scale=0.05, seed=3)
        before = gups.hot_mask().copy()
        moved = False
        for __ in range(5):
            gups.reshuffle_hot_set()
            if not np.array_equal(before, gups.hot_mask()):
                moved = True
                break
        assert moved
        assert gups.hot_mask().sum() == before.sum()
        assert gups.access_probabilities().sum() == pytest.approx(1.0)

    def test_core_group_reflects_object_size(self):
        small = GupsWorkload(scale=0.05, object_bytes=64).core_group()
        large = GupsWorkload(scale=0.05, object_bytes=4096).core_group()
        assert large.mlp > small.mlp
        assert large.randomness < small.randomness

    def test_scale_shrinks_geometry_proportionally(self):
        full = GupsWorkload()
        half = GupsWorkload(scale=0.5)
        assert half.n_pages == full.n_pages // 2
        ratio_full = full.hot_bytes / full.working_set_bytes
        ratio_half = half.hot_bytes / half.working_set_bytes
        assert ratio_half == pytest.approx(ratio_full, rel=0.01)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            GupsWorkload(scale=0.0)
        with pytest.raises(ConfigurationError):
            GupsWorkload(hot_bytes=gib(100), working_set_bytes=gib(72))
        with pytest.raises(ConfigurationError):
            GupsWorkload(hot_probability=0.0)


class TestHotSetShift:
    def test_shift_fires_at_time(self):
        base = GupsWorkload(scale=0.05, seed=3)
        wrapped = HotSetShiftWorkload(base, [5.0])
        before = base.hot_mask().copy()
        assert wrapped.advance(4.9) is False
        assert np.array_equal(before, wrapped.hot_mask())
        assert wrapped.advance(5.0) is True
        # Fires exactly once.
        assert wrapped.advance(6.0) is False

    def test_multiple_shifts(self):
        base = GupsWorkload(scale=0.05, seed=3)
        wrapped = HotSetShiftWorkload(base, [2.0, 4.0])
        assert wrapped.advance(2.5) is True
        assert wrapped.advance(4.5) is True
        assert wrapped.advance(9.0) is False

    def test_late_advance_fires_all_pending(self):
        base = GupsWorkload(scale=0.05, seed=3)
        wrapped = HotSetShiftWorkload(base, [1.0, 2.0, 3.0])
        assert wrapped.advance(10.0) is True
        assert wrapped.advance(11.0) is False

    def test_delegates_interface(self):
        base = GupsWorkload(scale=0.05)
        wrapped = HotSetShiftWorkload(base, [])
        assert wrapped.n_pages == base.n_pages
        assert wrapped.page_bytes == base.page_bytes
        assert wrapped.core_group().n_cores == base.core_group().n_cores

    def test_rejects_negative_times(self):
        base = GupsWorkload(scale=0.05)
        with pytest.raises(ConfigurationError):
            HotSetShiftWorkload(base, [-1.0])
