"""Tests for trace-driven workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.trace import TraceEpoch, TraceWorkload


def epoch(end_s, probs):
    return TraceEpoch(end_s=end_s, probabilities=np.asarray(probs,
                                                            dtype=float))


class TestConstruction:
    def test_normalizes_epochs(self):
        workload = TraceWorkload([epoch(1.0, [2.0, 2.0])])
        np.testing.assert_allclose(workload.access_probabilities(),
                                   [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([])

    def test_rejects_mismatched_pages(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([epoch(1.0, [1.0, 1.0]),
                           epoch(2.0, [1.0, 1.0, 1.0])])

    def test_rejects_unordered_epochs(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([epoch(2.0, [1.0, 1.0]),
                           epoch(1.0, [1.0, 1.0])])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([epoch(1.0, [-1.0, 2.0])])


class TestAdvance:
    def test_epoch_switching(self):
        workload = TraceWorkload([
            epoch(1.0, [1.0, 0.0]),
            epoch(2.0, [0.0, 1.0]),
        ])
        assert workload.access_probabilities()[0] == 1.0
        assert workload.advance(0.5) is False
        assert workload.advance(1.0) is True
        assert workload.access_probabilities()[1] == 1.0

    def test_last_epoch_persists(self):
        workload = TraceWorkload([epoch(1.0, [1.0, 0.0])])
        workload.advance(100.0)
        assert workload.access_probabilities()[0] == 1.0

    def test_skipping_multiple_epochs(self):
        workload = TraceWorkload([
            epoch(1.0, [1.0, 0.0]),
            epoch(2.0, [0.5, 0.5]),
            epoch(3.0, [0.0, 1.0]),
        ])
        assert workload.advance(2.5) is True
        assert workload.access_probabilities()[1] == 1.0


class TestFromPageStream:
    def test_bins_stream_into_epochs(self):
        ids = [0, 0, 1, 1, 1, 2]
        times = [0.1, 0.2, 1.1, 1.2, 1.3, 2.5]
        workload = TraceWorkload.from_page_stream(
            ids, times, n_pages=3, epoch_s=1.0
        )
        assert workload.n_epochs == 3
        assert workload.access_probabilities()[0] == 1.0
        workload.advance(1.5)
        assert workload.access_probabilities()[1] == 1.0

    def test_runs_in_the_loop(self, small_machine):
        from repro.runtime.loop import SimulationLoop
        from repro.tiering.hemem import HememSystem

        rng = np.random.default_rng(0)
        n_pages = small_machine.tiers[0].capacity_bytes // (2 * 2**20)
        ids = rng.integers(0, n_pages, size=5000)
        times = np.sort(rng.uniform(0, 5.0, size=5000))
        workload = TraceWorkload.from_page_stream(
            ids, times, n_pages=int(n_pages), epoch_s=1.0,
        )
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=HememSystem(), seed=0)
        metrics = loop.run(duration_s=2.0)
        assert metrics.throughput.min() > 0

    def test_rejects_bad_streams(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload.from_page_stream([], [], n_pages=2)
        with pytest.raises(ConfigurationError):
            TraceWorkload.from_page_stream([5], [0.0], n_pages=2)
        with pytest.raises(ConfigurationError):
            TraceWorkload.from_page_stream([0, 1], [1.0, 0.5], n_pages=2)
