"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(5.0, lambda n=name: fired.append(n))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_end(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run_until(50.0)
        assert sim.pending_events == 1
        sim.run_until(150.0)
        assert sim.pending_events == 0

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until(10.0)
        assert fired == list(range(6))

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            sim.schedule(-1.0, lambda: None)

    def test_rejects_running_backwards(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_event_counter(self):
        sim = Simulator()
        for __ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_fired == 7
