"""Cross-validation of the analytic model against the event simulator.

These are the tests that justify the substitution of the paper's physical
testbed with the analytic model (DESIGN.md §2): Little's Law measurement,
the closed-loop throughput law, and queueing-driven latency inflation all
hold mechanically in a request-level simulation.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.harness import run_closed_loop
from repro.sim.memctrl import BankedMemoryController
from repro.sim.engine import Simulator


class TestLittlesLaw:
    def test_littles_law_matches_direct_measurement(self):
        """O/R equals mean latency — the basis of Colloid's measurement."""
        stats = run_closed_loop(n_cores=8, mlp=8, tier_split=[0.8, 0.2])
        for tier in range(2):
            assert stats.littles_latency_ns[tier] == pytest.approx(
                stats.mean_latency_ns[tier], rel=0.02
            )

    def test_littles_law_holds_under_heavy_load(self):
        stats = run_closed_loop(n_cores=24, mlp=10, tier_split=[0.95, 0.05])
        assert stats.littles_latency_ns[0] == pytest.approx(
            stats.mean_latency_ns[0], rel=0.02
        )


class TestClosedLoopLaw:
    def test_per_core_throughput_is_mlp_64_over_latency(self):
        """T = N * 64 / L (§3.1), the paper's performance model."""
        stats = run_closed_loop(n_cores=12, mlp=8, tier_split=[0.9, 0.1])
        predicted = 8 * 64 / stats.app_mean_latency_ns
        assert stats.per_core_throughput == pytest.approx(
            predicted, rel=0.03
        )

    def test_doubling_mlp_raises_throughput_sublinearly_when_loaded(self):
        low = run_closed_loop(n_cores=16, mlp=4, tier_split=[1.0, 0.0])
        high = run_closed_loop(n_cores=16, mlp=8, tier_split=[1.0, 0.0])
        gain = high.throughput_bytes_per_ns / low.throughput_bytes_per_ns
        assert 1.0 < gain < 2.0


class TestLatencyInflation:
    def test_latency_grows_with_core_count(self):
        """Queueing at the banks inflates latency well before the wire
        saturates — §3.1's central claim."""
        latencies = [
            run_closed_loop(n_cores=n, mlp=8,
                            tier_split=[1.0, 0.0]).mean_latency_ns[0]
            for n in (1, 4, 16, 32)
        ]
        assert latencies == sorted(latencies)
        assert latencies[-1] > 2.0 * latencies[0]

    def test_unloaded_latency_near_wire_plus_service(self):
        stats = run_closed_loop(n_cores=1, mlp=1, tier_split=[1.0, 0.0],
                                wire_latencies_ns=(50.0, 115.0))
        # wire 50 + service in [15, 45] -> mean latency in [65, 95].
        assert 60.0 < stats.mean_latency_ns[0] < 100.0

    def test_offloading_to_second_tier_balances_latency(self):
        """Moving traffic to the uncontended tier drops tier-0 latency —
        the mechanism Colloid exploits."""
        packed = run_closed_loop(n_cores=24, mlp=8, tier_split=[1.0, 0.0])
        spread = run_closed_loop(n_cores=24, mlp=8, tier_split=[0.5, 0.5])
        assert spread.mean_latency_ns[0] < packed.mean_latency_ns[0]

    def test_row_locality_reduces_latency(self):
        random = run_closed_loop(n_cores=16, mlp=8, tier_split=[1.0, 0.0],
                                 row_hit_probability=0.1)
        local = run_closed_loop(n_cores=16, mlp=8, tier_split=[1.0, 0.0],
                                row_hit_probability=0.9)
        assert local.mean_latency_ns[0] < random.mean_latency_ns[0]


class TestMemoryController:
    def test_rejects_bad_construction(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            BankedMemoryController(sim, n_banks=0)
        with pytest.raises(ConfigurationError):
            BankedMemoryController(sim, row_hit_probability=1.5)

    def test_serves_requests_and_tracks_utilization(self):
        sim = Simulator()
        ctrl = BankedMemoryController(sim, n_banks=4,
                                      rng=np.random.default_rng(5))
        done = []
        for __ in range(20):
            ctrl.submit(lambda latency: done.append(latency))
        sim.run_until(10_000.0)
        assert len(done) == 20
        assert ctrl.requests_served == 20
        assert 0 < ctrl.utilization(10_000.0) < 1

    def test_harness_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            run_closed_loop(n_cores=0, mlp=4, tier_split=[1.0, 0.0])
        with pytest.raises(ConfigurationError):
            run_closed_loop(n_cores=1, mlp=4, tier_split=[1.0, 0.0],
                            duration_ns=-5.0)


class TestAnalyticAgreement:
    def test_analytic_curve_shape_matches_simulation(self):
        """The analytic L(u) = L0 + w*u/(1-u) family fits the simulated
        latency-vs-load points (moderate load region)."""
        points = []
        for n in (2, 6, 12, 20):
            stats = run_closed_loop(n_cores=n, mlp=8,
                                    tier_split=[1.0, 0.0],
                                    duration_ns=150_000.0)
            rate = stats.arrivals[0] / stats.duration_ns
            points.append((rate, stats.mean_latency_ns[0]))
        rates = np.array([p[0] for p in points])
        lats = np.array([p[1] for p in points])
        # Fit u = rate / B with B slightly above the max observed rate.
        best = np.inf
        for b in np.linspace(rates.max() * 1.02, rates.max() * 1.6, 30):
            u = rates / b
            # least-squares w for L = L0 + w * u/(1-u)
            x = u / (1 - u)
            l0 = lats.min() * 0.98
            w = np.dot(x, lats - l0) / np.dot(x, x)
            if w <= 0:
                continue
            err = np.abs(l0 + w * x - lats) / lats
            best = min(best, err.max())
        assert best < 0.2  # within 20% across the load range
