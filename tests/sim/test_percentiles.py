"""Tests for tail-latency measurement in the event simulator."""

import numpy as np

from repro.sim.harness import run_closed_loop


class TestPercentiles:
    def test_percentile_ordering(self):
        stats = run_closed_loop(n_cores=12, mlp=8, tier_split=[0.9, 0.1])
        for tier in range(2):
            p50, p95, p99 = stats.latency_percentiles_ns[tier]
            assert p50 <= p95 <= p99
            # Mean sits between median and tail for right-skewed
            # queueing distributions.
            assert p50 <= stats.mean_latency_ns[tier] * 1.05

    def test_tail_grows_faster_than_mean_under_load(self):
        """Queueing fattens the tail: p99/mean rises with load —
        an effect the mean-value analytic model cannot express, which is
        why the event simulator exists."""
        light = run_closed_loop(n_cores=2, mlp=8, tier_split=[1.0, 0.0])
        heavy = run_closed_loop(n_cores=28, mlp=8, tier_split=[1.0, 0.0])
        light_ratio = light.latency_percentiles_ns[0][2] / (
            light.mean_latency_ns[0]
        )
        heavy_ratio = heavy.latency_percentiles_ns[0][2] / (
            heavy.mean_latency_ns[0]
        )
        assert heavy_ratio > light_ratio

    def test_unused_tier_has_nan_percentiles(self):
        stats = run_closed_loop(n_cores=4, mlp=4, tier_split=[1.0, 0.0])
        assert np.isnan(stats.latency_percentiles_ns[1][0])
