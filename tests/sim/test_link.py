"""Validation of the duplex-link memory model.

The analytic alternate-tier model makes two distinguishing predictions
(DESIGN.md): latency stays near unloaded until the busier link direction
nears saturation (small queueing scale), and writeback traffic does not
delay reads (duplex). These tests check both mechanically.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.link import LinkAttachedMemory


def run_reads(n_clients: int, reads_per_client: int = 200,
              link_gbps: float = 75.0, with_writebacks: bool = False,
              seed: int = 3):
    """Closed-loop read clients against the link; returns mean latency."""
    sim = Simulator()
    link = LinkAttachedMemory(sim, link_bandwidth_gbps=link_gbps,
                              rng=np.random.default_rng(seed))
    latencies = []

    def make_client(remaining):
        state = {"left": remaining}

        def issue():
            if state["left"] <= 0:
                return
            state["left"] -= 1
            if with_writebacks:
                link.submit_writeback()
            link.submit_read(lambda lat: (latencies.append(lat), issue()))

        return issue

    for i in range(n_clients):
        make_client(reads_per_client)()
    sim.run_until(5e7)
    assert len(latencies) == n_clients * reads_per_client
    return float(np.mean(latencies))


class TestLinkLatency:
    def test_unloaded_latency_near_propagation_plus_service(self):
        latency = run_reads(n_clients=1)
        # propagation 100 + remote 15 + serialization ~0.85.
        assert 110.0 < latency < 130.0

    def test_flat_until_saturation(self):
        """Latency rises only mildly at moderate load — the analytic
        model's small queueing scale for link tiers."""
        light = run_reads(n_clients=2)
        moderate = run_reads(n_clients=24)
        assert moderate < light * 1.6

    def test_sharp_rise_near_saturation(self):
        moderate = run_reads(n_clients=24)
        saturated = run_reads(n_clients=400)
        assert saturated > moderate * 2.0

    def test_narrow_link_saturates_sooner(self):
        wide = run_reads(n_clients=64, link_gbps=75.0)
        narrow = run_reads(n_clients=64, link_gbps=10.0)
        assert narrow > wide


class TestDuplex:
    def test_writebacks_do_not_delay_reads(self):
        """The defining duplex property the analytic tier_load models."""
        without = run_reads(n_clients=24, with_writebacks=False)
        with_wb = run_reads(n_clients=24, with_writebacks=True)
        assert with_wb == pytest.approx(without, rel=0.05)

    def test_writebacks_counted(self):
        sim = Simulator()
        link = LinkAttachedMemory(sim)
        for __ in range(5):
            link.submit_writeback()
        assert link.writes_served == 5


class TestValidation:
    def test_rejects_bad_construction(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            LinkAttachedMemory(sim, link_bandwidth_gbps=0.0)
        with pytest.raises(ConfigurationError):
            LinkAttachedMemory(sim, propagation_ns=-1.0)
