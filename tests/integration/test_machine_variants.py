"""End-to-end runs on the CXL and HBM machine variants.

Colloid's design claim (§3.1): the balancing principle needs no
per-machine tuning — unloaded latencies, bandwidths, and contention are
all captured through the measured loaded latencies. These tests run the
unchanged HeMem+Colloid stack on machines with very different alternate
tiers and check it lands on the right side of the trade-off each time.
"""

import pytest

from repro.core.integrate import HememColloidSystem
from repro.memhw.topology import cxl_testbed, hbm_testbed
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.units import gib
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def run(machine, system, contention, duration=8.0, seed=5):
    scaled = machine.with_tiers(
        tuple(t.scaled_capacity(FAST_SCALE) for t in machine.tiers)
    )
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    loop = SimulationLoop(machine=scaled, workload=workload,
                          system=system, contention=contention, seed=seed)
    return loop.run(duration_s=duration)


class TestCxlVariant:
    def test_parity_at_zero_contention(self):
        machine = cxl_testbed(latency_ratio=2.0)
        base = run(machine, HememSystem(), 0)
        colloid = run(machine, HememColloidSystem(), 0)
        assert colloid.throughput[-50:].mean() == pytest.approx(
            base.throughput[-50:].mean(), rel=0.1
        )

    def test_gain_under_contention(self):
        machine = cxl_testbed(latency_ratio=2.0)
        base = run(machine, HememSystem(), 3)
        colloid = run(machine, HememColloidSystem(), 3)
        gain = colloid.throughput[-50:].mean() / base.throughput[-50:].mean()
        assert gain > 1.3

    def test_slower_cxl_smaller_gain(self):
        """Figure 7's gradient on the CXL preset."""
        gains = []
        for ratio in (2.0, 2.7):
            machine = cxl_testbed(latency_ratio=ratio)
            base = run(machine, HememSystem(), 3)
            colloid = run(machine, HememColloidSystem(), 3)
            gains.append(colloid.throughput[-50:].mean()
                         / base.throughput[-50:].mean())
        assert gains[1] < gains[0] * 1.05
        assert gains[1] > 1.1


class TestHbmVariant:
    def test_hbm_tier_absorbs_hot_set_under_contention(self):
        """With a 400 GB/s alternate tier, offloading is cheap: Colloid
        should move the hot set and win big at 3x contention."""
        machine = hbm_testbed(hbm_capacity_bytes=gib(64))
        base = run(machine, HememSystem(), 3)
        colloid = run(machine, HememColloidSystem(), 3)
        gain = colloid.throughput[-50:].mean() / base.throughput[-50:].mean()
        assert gain > 1.5
        # Nearly everything lands on HBM.
        assert colloid.p_true[-50:].mean() < 0.2

    def test_hbm_latency_stays_low_under_offload(self):
        machine = hbm_testbed(hbm_capacity_bytes=gib(64))
        colloid = run(machine, HememColloidSystem(), 3)
        hbm_latency = colloid.latencies_ns[-50:, 1].mean()
        # 400 GB/s absorbs the offloaded hot set without inflating much.
        assert hbm_latency < 160.0

    def test_rejects_hbm_faster_than_default(self):
        with pytest.raises(Exception):
            hbm_testbed(hbm_latency_ns=40.0)
