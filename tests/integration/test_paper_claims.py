"""Integration tests organized by the paper's claims.

Each test maps to a quoted claim and checks the reproduction's version of
it on the full stack (hardware model + tracking + tiering + Colloid),
with band tolerances per DESIGN.md §5.
"""

import numpy as np
import pytest

from repro.core.integrate import (
    HememColloidSystem,
    MemtisColloidSystem,
    TppColloidSystem,
)
from repro.experiments.common import (
    ExperimentConfig,
    best_case_for,
    run_gups_steady_state,
)
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=FAST_SCALE, seed=11,
                            migration_limit_bytes=8 * 1024 * 1024,
                            duration_caps={"hemem": 12.0, "memtis": 20.0,
                                           "tpp": 45.0})


@pytest.fixture(scope="module")
def steady(config):
    """Steady-state throughputs for all systems at 0x and 3x."""
    results = {}
    for intensity in (0, 3):
        results[("best", intensity)] = best_case_for(
            intensity, config
        ).throughput
        for base in ("hemem", "tpp", "memtis"):
            for name in (base, f"{base}+colloid"):
                results[(name, intensity)] = run_gups_steady_state(
                    name, intensity, config
                ).throughput
    return results


class TestSection2Claims:
    """§2: existing systems are far from optimal under contention."""

    def test_baselines_near_best_at_zero_contention(self, steady):
        """'HeMem, TPP, and MEMTIS achieve throughput within 1.5%, 4.6%
        and 10.1% of the best-case respectively' (0x)."""
        best = steady[("best", 0)]
        assert steady[("hemem", 0)] > 0.90 * best
        assert steady[("tpp", 0)] > 0.88 * best
        assert steady[("memtis", 0)] > 0.82 * best

    def test_memtis_pays_a_splitting_penalty(self, steady):
        """MEMTIS trails the other baselines at 0x because of premature
        hugepage splitting (§2.2)."""
        assert steady[("memtis", 0)] < steady[("hemem", 0)]

    def test_baselines_far_from_best_at_3x(self, steady):
        """'as much as 2.3x, 2.36x and 2.46x worse than optimal.'"""
        best = steady[("best", 3)]
        for base in ("hemem", "tpp", "memtis"):
            gap = best / steady[(base, 3)]
            assert 1.7 < gap < 3.0, base


class TestSection5Claims:
    """§5.1: Colloid restores near-optimal performance."""

    def test_colloid_matches_baselines_at_zero_contention(self, steady):
        """'With 0x intensity, performance with Colloid matches
        performance without Colloid for all systems.'"""
        for base in ("hemem", "tpp", "memtis"):
            ratio = steady[(f"{base}+colloid", 0)] / steady[(base, 0)]
            assert ratio == pytest.approx(1.0, abs=0.1), base

    def test_colloid_gains_at_3x(self, steady):
        """'1.2-2.3x for HeMem, 1.35-2.35x for TPP and 1.29-2.3x for
        MEMTIS.'"""
        for base in ("hemem", "tpp", "memtis"):
            gain = steady[(f"{base}+colloid", 3)] / steady[(base, 3)]
            assert 1.6 < gain < 2.8, base

    def test_colloid_near_best_case(self, steady):
        """'within 3%, 8% and 13%' of best-case (we allow a wider band;
        the balance point is not exactly the throughput optimum when the
        latency curves are steep)."""
        for base in ("hemem", "tpp", "memtis"):
            for intensity in (0, 3):
                gap = 1 - (steady[(f"{base}+colloid", intensity)]
                           / steady[("best", intensity)])
                assert gap < 0.25, (base, intensity)


class TestMeasurementPathway:
    """§3.1: the CHA + Little's Law + EWMA pathway drives decisions."""

    def test_colloid_works_under_measurement_noise(self, small_machine):
        """Decisions survive 5% lognormal counter noise."""
        workload = GupsWorkload(scale=FAST_SCALE, seed=11)
        loop = SimulationLoop(
            machine=small_machine, workload=workload,
            system=HememColloidSystem(), contention=3,
            cha_noise_sigma=0.05, seed=11,
        )
        noisy = loop.run(duration_s=8.0).throughput[-50:].mean()
        loop2 = SimulationLoop(
            machine=small_machine,
            workload=GupsWorkload(scale=FAST_SCALE, seed=11),
            system=HememColloidSystem(), contention=3,
            cha_noise_sigma=0.0, seed=11,
        )
        clean = loop2.run(duration_s=8.0).throughput[-50:].mean()
        assert noisy == pytest.approx(clean, rel=0.1)

    def test_measured_p_includes_antagonist_but_loop_still_converges(
            self, small_machine):
        """The CHA cannot attribute traffic; the feedback loop tolerates
        the antagonist's contribution to measured p."""
        workload = GupsWorkload(scale=FAST_SCALE, seed=11)
        loop = SimulationLoop(
            machine=small_machine, workload=workload,
            system=HememColloidSystem(), contention=2, seed=11,
        )
        metrics = loop.run(duration_s=10.0)
        tail = metrics.p_measured[-50:]
        assert (tail > metrics.p_true[-50:]).all()  # antagonist included
        ratio = (metrics.latencies_ns[-50:, 0].mean()
                 / metrics.latencies_ns[-50:, 1].mean())
        assert ratio < 2.0  # still pulled far toward balance


class TestStructuralProperties:
    """Cross-cutting invariants on full runs."""

    @pytest.mark.parametrize("system_cls", [
        HememSystem, MemtisSystem, HememColloidSystem,
        MemtisColloidSystem, TppColloidSystem,
    ])
    def test_capacity_never_violated(self, system_cls, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=11)
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=system_cls(), contention=3, seed=11)
        for __ in range(300):
            loop.step()
            for tier in range(loop.placement.n_tiers):
                assert loop.placement.used_bytes(tier) <= (
                    loop.placement.capacity_bytes(tier)
                )

    def test_runs_are_deterministic(self, small_machine):
        def run():
            workload = GupsWorkload(scale=FAST_SCALE, seed=11)
            loop = SimulationLoop(
                machine=small_machine, workload=workload,
                system=HememColloidSystem(), contention=3, seed=11,
            )
            return loop.run(duration_s=3.0).throughput

        np.testing.assert_array_equal(run(), run())
