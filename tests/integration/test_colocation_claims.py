"""Integration tests for the multi-tenant colocation story.

The paper's §6 multi-tenant sketch: tenants sharing a machine couple
through the hardware equilibrium, and a latency-aware tenant vacates an
overloaded default tier where a latency-agnostic one stays put. These
tests run the full colocated stack (shared solve, per-tenant
controllers, capacity arbitration, invariant checking) and assert the
observable claims with band tolerances.
"""

import numpy as np
import pytest

from repro.exec.factories import make_system
from repro.experiments.common import scaled_machine
from repro.runtime.colocation import ColocatedLoop, TenantSpec
from repro.workloads.gups import GupsWorkload
from repro.workloads.silo import SiloYcsbWorkload
from tests.conftest import FAST_SCALE

HALF = FAST_SCALE / 2.0


def colocated_loop(primary_system: str, contention: int,
                   duration_s: float) -> ColocatedLoop:
    loop = ColocatedLoop(
        machine=scaled_machine(FAST_SCALE),
        tenants=[
            TenantSpec(name="gups",
                       workload=GupsWorkload(scale=HALF, seed=11),
                       system=make_system(primary_system)),
            TenantSpec(name="silo",
                       workload=SiloYcsbWorkload(scale=HALF, seed=12),
                       system=make_system("hemem+colloid")),
        ],
        contention=contention,
        seed=11,
    )
    loop.run(duration_s=duration_s)
    return loop


@pytest.fixture(scope="module")
def contended():
    """Primary under hemem vs hemem+colloid, both at 2x contention."""
    return {
        system: colocated_loop(system, contention=2, duration_s=12.0)
        for system in ("hemem", "hemem+colloid")
    }


def tail_latencies(loop: ColocatedLoop) -> np.ndarray:
    tail = max(1, len(loop.metrics) // 4)
    return loop.metrics.latencies_ns[-tail:].mean(axis=0)


def tail_throughput(loop: ColocatedLoop, tenant: str) -> float:
    metrics = loop.tenant_metrics[tenant]
    tail = max(1, len(metrics) // 4)
    return float(metrics.throughput[-tail:].mean())


class TestSharedEquilibrium:
    def test_colloid_tenants_balance_loaded_latencies(self, contended):
        # Algorithm 2's epsilon band, loosened to the integration band
        # used by the single-app claims: at steady state the colocated
        # Colloid tenants keep per-tier loaded latencies within 2x.
        latencies = tail_latencies(contended["hemem+colloid"])
        ratio = float(latencies.max() / latencies.min())
        assert ratio < 2.0, latencies

    def test_latency_agnostic_primary_leaves_imbalance(self, contended):
        balanced = tail_latencies(contended["hemem+colloid"])
        unbalanced = tail_latencies(contended["hemem"])
        ratio_balanced = float(balanced.max() / balanced.min())
        ratio_unbalanced = float(unbalanced.max() / unbalanced.min())
        assert ratio_unbalanced > ratio_balanced + 0.2, (
            ratio_unbalanced, ratio_balanced)

    def test_latency_awareness_pays_under_contention(self, contended):
        aware = tail_throughput(contended["hemem+colloid"], "gups")
        agnostic = tail_throughput(contended["hemem"], "gups")
        assert aware > agnostic * 1.1, (aware, agnostic)

    def test_checks_stay_clean_throughout(self, contended):
        for loop in contended.values():
            assert loop.checker.checks_run > 0
            assert not loop.checker.violations
