"""Convergence-timescale ordering across the three systems (§5.2).

The paper: HeMem converges in ~10 s, MEMTIS ~25 s, TPP hundreds of
seconds after access-pattern changes — HeMem's PEBS pipeline refreshes
hotness fastest, MEMTIS acts on a 500 ms cadence, and TPP waits on
page-table scans. Colloid preserves each system's timescale.

These tests use an accelerated migration limit, so the absolute numbers
shrink, but the *ordering* — the paper's point — must hold.
"""

import numpy as np

from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem
from repro.workloads.dynamic import HotSetShiftWorkload
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE

SHIFT_S = 6.0


def time_to_recover(system, small_machine, duration_s, seed=5):
    """Seconds after the hot-set shift until p_true recovers to 80% of
    its pre-shift level."""
    gups = GupsWorkload(scale=FAST_SCALE, seed=seed)
    workload = HotSetShiftWorkload(gups, [SHIFT_S])
    loop = SimulationLoop(
        machine=small_machine, workload=workload, system=system,
        migration_limit_bytes=8 * 1024 * 1024, seed=seed,
    )
    metrics = loop.run(duration_s=duration_s)
    before = metrics.p_true[metrics.time_s < SHIFT_S][-50:].mean()
    after_mask = metrics.time_s >= SHIFT_S
    times = metrics.time_s[after_mask]
    p = metrics.p_true[after_mask]
    recovered = np.nonzero(p >= 0.8 * before)[0]
    if recovered.size == 0:
        return float("inf")
    return float(times[recovered[0]] - SHIFT_S)


class TestConvergenceOrdering:
    def test_hemem_fastest_tpp_slowest(self, small_machine):
        hemem_t = time_to_recover(HememSystem(), small_machine, 20.0)
        memtis_t = time_to_recover(MemtisSystem(), small_machine, 25.0)
        tpp_t = time_to_recover(
            TppSystem(), small_machine, 60.0,
        )
        assert hemem_t <= memtis_t + 1.0
        assert tpp_t > 2.0 * hemem_t

    def test_tpp_scan_rate_controls_convergence(self, small_machine):
        fast_scan = time_to_recover(
            TppSystem(scan_fraction_per_quantum=0.02), small_machine,
            40.0,
        )
        slow_scan = time_to_recover(
            TppSystem(scan_fraction_per_quantum=0.001), small_machine,
            60.0,
        )
        assert slow_scan > fast_scan
