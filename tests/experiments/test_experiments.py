"""Tests for the experiment harnesses (small grids)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig1, fig4, fig9, fig10
from repro.experiments.common import (
    ExperimentConfig,
    base_system_of,
    best_case_for,
    format_table,
    make_system,
    run_gups_steady_state,
    scaled_machine,
)
from tests.conftest import FAST_SCALE


@pytest.fixture
def config():
    # A generous migration limit keeps convergence (and thus these
    # tests) fast; the experiment defaults use the paper-scaled limit.
    return ExperimentConfig(scale=FAST_SCALE, seed=7,
                            migration_limit_bytes=8 * 1024 * 1024)


class TestCommon:
    def test_scaled_machine_preserves_ratios(self):
        machine = scaled_machine(0.25)
        full = scaled_machine(1.0)
        assert machine.tiers[0].capacity_bytes == pytest.approx(
            full.tiers[0].capacity_bytes * 0.25, rel=1e-6
        )
        assert machine.tiers[0].unloaded_latency_ns == (
            full.tiers[0].unloaded_latency_ns
        )

    def test_make_system_names(self):
        for name in ("hemem", "tpp", "memtis", "hemem+colloid",
                     "tpp+colloid", "memtis+colloid"):
            assert make_system(name).name == name

    def test_make_system_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_system("autonuma")

    def test_base_system_of(self):
        assert base_system_of("hemem+colloid") == "hemem"
        assert base_system_of("tpp") == "tpp"

    def test_format_table_aligns(self):
        table = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_best_case_monotone_in_contention(self, config):
        """More contention can only hurt the best case."""
        best0 = best_case_for(0, config).throughput
        best3 = best_case_for(3, config).throughput
        assert best3 < best0


class TestFig1Harness:
    def test_single_cell(self, config):
        result = run_gups_steady_state("hemem", 0, config,
                                       max_duration_s=5.0)
        assert result.throughput > 0

    def test_small_grid_shapes(self, config):
        result = fig1.run(config, intensities=(0, 3), systems=("hemem",))
        assert result.gap("hemem", 0) < 1.2
        assert result.gap("hemem", 3) > 1.6
        text = fig1.format_rows(result)
        assert "best-case" in text
        assert "hemem" in text


class TestFig4Harness:
    def test_all_scenarios_converge(self):
        traces = fig4.run(quanta=80)
        assert len(traces) == 3
        for trace in traces:
            assert trace.final_error() < 0.05, trace.scenario

    def test_pstar_jump_uses_reset(self):
        trace = fig4.run_scenario("pstar-jump", quanta=80)
        # After the jump the watermarks must have been reset (p_hi back
        # to 1.0 at some point past quantum 20).
        assert max(trace.p_hi[21:]) == pytest.approx(1.0)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            fig4.run_scenario("nope")

    def test_format_rows(self):
        text = fig4.format_rows(fig4.run(quanta=60))
        assert "static" in text and "pstar-jump" in text


class TestFig9Harness:
    def test_hotshift_trace_dips_and_recovers(self, config):
        trace = fig9.run_one("hemem", "hotshift-0x", config,
                             timeline=(8.0, 20.0))
        before = trace.throughput[trace.times_s < 8.0][-2:].mean()
        dip = trace.throughput[(trace.times_s >= 8.0)
                               & (trace.times_s < 11.0)].min()
        final = trace.throughput[-2:].mean()
        # The dip depends on how much the old and new hot regions
        # overlap; with per-second averaging a few percent is expected.
        assert dip < before * 0.97
        assert final == pytest.approx(before, rel=0.1)

    def test_contention_scenario_colloid_recovers_higher(self, config):
        base = fig9.run_one("hemem", "contention", config,
                            timeline=(8.0, 22.0))
        colloid = fig9.run_one("hemem+colloid", "contention", config,
                               timeline=(8.0, 22.0))
        assert colloid.throughput[-2:].mean() > (
            1.5 * base.throughput[-2:].mean()
        )

    def test_rejects_unknown_scenario(self, config):
        with pytest.raises(ConfigurationError):
            fig9.run_one("hemem", "bogus", config)


class TestFig10Harness:
    def test_migration_trace_spikes_after_shift(self, config):
        trace = fig10.run_one("hemem", "hotshift-0x", config,
                              shift_s=9.0, duration_s=20.0)
        # Quiescent just before the shift (initial convergence is done),
        # then a sustained burst after it.
        before = trace.migration_rate[
            (trace.times_s >= 7.0) & (trace.times_s < 9.0)
        ].max()
        after = trace.migration_rate[trace.times_s >= 9.0].max()
        assert after > 5 * max(before, 1.0)

    def test_colloid_peak_not_above_baseline(self, config):
        base = fig10.run_one("hemem", "hotshift-0x", config,
                             shift_s=9.0, duration_s=20.0)
        colloid = fig10.run_one("hemem+colloid", "hotshift-0x", config,
                                shift_s=9.0, duration_s=20.0)
        assert colloid.peak_rate <= base.peak_rate * 1.1

    def test_steady_migration_fraction_small(self, config):
        trace = fig10.run_one("hemem+colloid", "hotshift-0x", config,
                              shift_s=9.0, duration_s=22.0)
        assert trace.steady_fraction() < 0.02


class TestColocationHarness:
    def test_build_cells_shapes(self, config):
        from repro.experiments import colocation

        cells = colocation.build_cells(
            config, systems=("hemem", "hemem+colloid"),
            intensities=(0, 2))
        # One solo cell per intensity plus one colocated cell per
        # (system, intensity).
        assert len(cells) == 2 + 4
        colocated = cells[("hemem", 2)]
        assert len(colocated.tenants) == 2
        assert colocated.tenants[0].system == "hemem"
        assert colocated.tenants[1].system == colocation.CORUNNER_SYSTEM
        assert cells[(colocation.SOLO, 0)].tenants == ()

    def test_migration_limit_floor_admits_a_page(self, config):
        from repro.experiments import colocation

        spec = colocation.colocated_spec(config, "hemem+colloid", 2,
                                         max_duration_s=5.0)
        primary = spec.tenants[0].workload.build()
        assert spec.migration_limit_bytes >= primary.page_bytes

    def test_result_accessors(self):
        from repro.experiments.colocation import ColocationResult

        result = ColocationResult(
            systems=("hemem",), intensities=(2,),
            solo_throughput={2: 50.0},
            primary_throughput={("hemem", 2): 30.0},
            corunner_throughput={("hemem", 2): 20.0},
            latencies={("hemem", 2): (240.0, 120.0)},
        )
        assert result.primary_retention("hemem", 2) == pytest.approx(0.6)
        assert result.latency_ratio("hemem", 2) == pytest.approx(2.0)
        from repro.experiments.colocation import format_rows

        text = format_rows(result)
        assert "hemem" in text and "solo" in text
