"""Tests for the report generator (tiny section subset)."""

import pytest

from repro.experiments import report
from repro.experiments.common import ExperimentConfig
from tests.conftest import FAST_SCALE


@pytest.fixture
def config():
    return ExperimentConfig(scale=FAST_SCALE, seed=7,
                            migration_limit_bytes=8 * 1024 * 1024,
                            duration_caps={"hemem": 8.0, "memtis": 12.0,
                                           "tpp": 25.0})


class TestReport:
    def test_section_filter_and_progress(self, config):
        seen = []
        body = report.generate(config, sections=["Figure 4"],
                               progress=seen.append)
        assert seen == ["Figure 4 — ComputeShift traces"]
        assert "pstar-jump" in body
        assert "Figure 1" not in body

    def test_write_roundtrip(self, config, tmp_path):
        path = report.write(tmp_path / "r.md", config,
                            sections=["Figure 4"])
        text = path.read_text()
        assert text.startswith("# Measured evaluation report")
        assert "ComputeShift" in text

    def test_every_section_has_a_runner(self):
        titles = [t for t, __ in report.SECTIONS]
        assert len(titles) == len(set(titles))
        for expected in ("Figure 1", "Figure 11", "CPU overheads",
                         "Appendix"):
            assert any(t.startswith(expected) for t in titles)
