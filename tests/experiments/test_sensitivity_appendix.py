"""Tests for the extended-version experiment harnesses."""

import pytest

from repro.experiments import appendix, sensitivity
from repro.experiments.common import ExperimentConfig
from tests.conftest import FAST_SCALE


@pytest.fixture
def config():
    return ExperimentConfig(scale=FAST_SCALE, seed=7,
                            migration_limit_bytes=8 * 1024 * 1024,
                            duration_caps={"hemem": 10.0, "memtis": 15.0,
                                           "tpp": 30.0})


class TestSensitivity:
    def test_single_cell_runs(self, config):
        throughput, variation, reaction = sensitivity.run_cell(
            0.05, 0.01, config
        )
        assert throughput > 0
        assert variation >= 0
        assert reaction is None or reaction >= 0

    def test_grid_and_formatting(self, config):
        result = sensitivity.run(config, deltas=(0.05,),
                                 epsilons=(0.01,))
        text = sensitivity.format_rows(result)
        assert "delta" in text and "reaction" in text

    def test_large_delta_settles_further_from_optimum(self, config):
        """The paper's delta trade-off on the real stack."""
        tight, *_ = sensitivity.run_cell(0.02, 0.01, config)
        loose, *_ = sensitivity.run_cell(0.30, 0.01, config)
        assert loose <= tight * 1.03


class TestAppendix:
    def test_small_grid(self, config):
        result = appendix.run(config, core_counts=(5, 15),
                              read_fractions=(0.5,),
                              intensities=(3,))
        assert result.by_cores[(15, 3)] > 1.2
        assert result.by_read_fraction[(0.5, 3)] > 1.2
        text = appendix.format_rows(result)
        assert "cores" in text and "read fraction" in text
