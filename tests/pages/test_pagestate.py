"""Tests for the NumPy-backed page table."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pages.pagestate import UNPLACED, PageArray
from repro.units import mib


class TestConstruction:
    def test_uniform(self):
        pages = PageArray.uniform(100, mib(2))
        assert pages.n_pages == 100
        assert len(pages) == 100
        assert pages.total_bytes == 100 * mib(2)
        assert (pages.tier == UNPLACED).all()

    def test_mixed_sizes(self):
        pages = PageArray([4096, 2 * 1024 * 1024, 4096])
        assert pages.total_bytes == 4096 * 2 + 2 * 1024 * 1024

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PageArray([])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError):
            PageArray([4096, 0])

    def test_rejects_nonpositive_uniform(self):
        with pytest.raises(ConfigurationError):
            PageArray.uniform(0, 4096)
        with pytest.raises(ConfigurationError):
            PageArray.uniform(5, 0)


class TestTierAssignment:
    def test_set_tier_and_query(self):
        pages = PageArray.uniform(10, 4096)
        pages.set_tier(np.array([0, 1, 2]), 0)
        pages.set_tier(np.array([3, 4]), 1)
        assert list(pages.pages_in_tier(0)) == [0, 1, 2]
        assert list(pages.pages_in_tier(1)) == [3, 4]
        assert pages.bytes_in_tier(0) == 3 * 4096
        assert pages.bytes_in_tier(1) == 2 * 4096

    def test_unplaced_pages_not_counted(self):
        pages = PageArray.uniform(10, 4096)
        assert pages.bytes_in_tier(0) == 0


class TestResize:
    def test_resize_changes_sizes(self):
        pages = PageArray.uniform(4, mib(2))
        pages.resize_pages(np.array([1]), [4096])
        assert pages.sizes_bytes[1] == 4096
        assert pages.sizes_bytes[0] == mib(2)

    def test_rejects_nonpositive_resize(self):
        pages = PageArray.uniform(4, mib(2))
        with pytest.raises(ConfigurationError):
            pages.resize_pages(np.array([0]), [0])
