"""Tests for the best-case placement oracle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memhw.antagonist import antagonist_core_group
from repro.memhw.corestate import CoreGroup
from repro.memhw.fixedpoint import EquilibriumSolver
from repro.memhw.topology import paper_testbed
from repro.pages.oracle import best_case_sweep, sweep_hot_fraction
from repro.units import gib, mib


@pytest.fixture
def setup():
    machine = paper_testbed()
    solver = EquilibriumSolver(machine.tiers)
    app = CoreGroup("gups", 15, machine.app_base_mlp, randomness=1.0,
                    read_fraction=0.5)
    n_pages = 4608  # 9 GiB at 2 MiB pages (1/8 scale geometry)
    n_hot = 1536
    probs = np.full(n_pages, 0.1 / n_pages)
    hot = np.zeros(n_pages, dtype=bool)
    hot[:n_hot] = True
    probs[hot] += 0.9 / n_hot
    sizes = np.full(n_pages, mib(2), dtype=np.int64)
    default_capacity = int(gib(32) * 0.125)
    return machine, solver, app, probs, hot, sizes, default_capacity


class TestBestCaseSweep:
    def test_zero_contention_prefers_hot_packing(self, setup):
        machine, solver, app, probs, hot, sizes, cap = setup
        result = best_case_sweep(solver, app, probs, hot, sizes, cap)
        assert result.best.hot_fraction >= 0.6

    def test_heavy_contention_prefers_alternate(self, setup):
        machine, solver, app, probs, hot, sizes, cap = setup
        ant = antagonist_core_group(3, machine.antagonist)
        result = best_case_sweep(solver, app, probs, hot, sizes, cap,
                                 pinned=[(ant, 0)])
        assert result.best.hot_fraction <= 0.2

    def test_best_case_gain_matches_paper_band(self, setup):
        """Best-case at 3x is ~2.3x the hot-packed placement (Figure 1)."""
        machine, solver, app, probs, hot, sizes, cap = setup
        ant = antagonist_core_group(3, machine.antagonist)
        result = best_case_sweep(solver, app, probs, hot, sizes, cap,
                                 pinned=[(ant, 0)])
        packed = [pt for pt in result.points if pt.hot_fraction == 1.0]
        assert packed, "sweep should include the fully packed placement"
        gain = result.throughput / packed[0].throughput
        assert 1.7 <= gain <= 2.9

    def test_points_cover_all_feasible_fractions(self, setup):
        machine, solver, app, probs, hot, sizes, cap = setup
        result = best_case_sweep(solver, app, probs, hot, sizes, cap)
        fractions = [pt.hot_fraction for pt in result.points]
        assert fractions == sorted(fractions)
        assert len(fractions) == 11  # hot set fits at every fraction

    def test_infeasible_fractions_skipped(self, setup):
        machine, solver, app, probs, hot, sizes, __ = setup
        tiny_capacity = int(sizes[hot].sum() // 2)  # half the hot set
        result = best_case_sweep(solver, app, probs, hot, sizes,
                                 tiny_capacity)
        assert all(pt.hot_fraction <= 0.5 + 1e-9 for pt in result.points)

    def test_default_probability_monotone_in_fraction(self, setup):
        machine, solver, app, probs, hot, sizes, cap = setup
        result = best_case_sweep(solver, app, probs, hot, sizes, cap)
        ps = [pt.default_probability for pt in result.points]
        # More hot pages in default -> strictly more probability there.
        assert all(b >= a - 1e-9 for a, b in zip(ps, ps[1:]))

    def test_shape_mismatch_rejected(self, setup):
        machine, solver, app, probs, hot, sizes, cap = setup
        with pytest.raises(ConfigurationError):
            best_case_sweep(solver, app, probs[:-1], hot, sizes, cap)


class TestRawSweep:
    def test_returns_pairs(self, setup):
        machine, solver, app, *_ = setup
        pairs = sweep_hot_fraction(solver, app, [0.0, 0.5, 1.0])
        assert len(pairs) == 3
        assert all(t > 0 for _, t in pairs)

    def test_rejects_out_of_range_p(self, setup):
        machine, solver, app, *_ = setup
        with pytest.raises(ConfigurationError):
            sweep_hot_fraction(solver, app, [1.5])

    def test_throughput_curve_has_interior_peak_under_contention(self, setup):
        """Under heavy contention the throughput-vs-p curve peaks at low
        p — the structural change Colloid exploits."""
        machine, solver, app, *_ = setup
        ant = antagonist_core_group(3, machine.antagonist)
        pairs = sweep_hot_fraction(
            solver, app, np.linspace(0.0, 1.0, 11), pinned=[(ant, 0)]
        )
        throughputs = [t for _, t in pairs]
        assert np.argmax(throughputs) < 3
