"""Tests for capacity-checked placement state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first


def make_placement(n_pages=10, page_bytes=100,
                   capacities=(500, 1000)) -> PlacementState:
    pages = PageArray.uniform(n_pages, page_bytes)
    return PlacementState(pages, list(capacities))


class TestConstruction:
    def test_basics(self):
        placement = make_placement()
        assert placement.n_tiers == 2
        assert placement.capacity_bytes(0) == 500
        assert placement.free_bytes(0) == 500
        assert placement.used_bytes(1) == 0

    def test_rejects_oversized_working_set(self):
        pages = PageArray.uniform(100, 100)
        with pytest.raises(CapacityError):
            PlacementState(pages, [500, 1000])

    def test_rejects_bad_capacities(self):
        pages = PageArray.uniform(2, 100)
        # Zero on one tier is a valid colocation grant; negative or
        # all-zero capacities are not.
        PlacementState(pages, [0, 1000])
        with pytest.raises(ConfigurationError):
            PlacementState(pages, [-1, 1000])
        with pytest.raises(ConfigurationError):
            PlacementState(pages, [0, 0])


class TestMove:
    def test_move_updates_usage(self):
        placement = make_placement()
        placement.move(np.array([0, 1, 2]), 0)
        assert placement.used_bytes(0) == 300
        placement.move(np.array([0]), 1)
        assert placement.used_bytes(0) == 200
        assert placement.used_bytes(1) == 100

    def test_move_rejects_overflow_atomically(self):
        placement = make_placement()
        placement.move(np.arange(5), 0)  # 500/500 used
        with pytest.raises(CapacityError):
            placement.move(np.array([5]), 0)
        assert placement.used_bytes(0) == 500
        assert placement.pages.tier[5] == -1  # untouched

    def test_move_same_tier_is_noop(self):
        placement = make_placement()
        placement.move(np.array([0]), 0)
        placement.move(np.array([0]), 0)
        assert placement.used_bytes(0) == 100

    def test_move_empty_batch(self):
        placement = make_placement()
        placement.move(np.empty(0, dtype=np.int64), 0)
        assert placement.used_bytes(0) == 0

    def test_move_rejects_bad_tier(self):
        placement = make_placement()
        with pytest.raises(ConfigurationError):
            placement.move(np.array([0]), 7)

    def test_fits_predicate(self):
        placement = make_placement()
        assert placement.fits(np.arange(5), 0)
        assert not placement.fits(np.arange(6), 0)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_usage_always_consistent(self, moves, dst):
        """Capacity accounting stays consistent with the page table under
        arbitrary move sequences."""
        placement = make_placement()
        for page in moves:
            try:
                placement.move(np.array([page]), dst)
            except CapacityError:
                pass
            dst = 1 - dst
        for tier in range(2):
            assert placement.used_bytes(tier) == (
                placement.pages.bytes_in_tier(tier)
            )
            assert placement.used_bytes(tier) <= placement.capacity_bytes(
                tier
            )


class TestProbabilities:
    def test_default_tier_probability(self):
        placement = make_placement()
        placement.move(np.array([0, 1]), 0)
        placement.move(np.arange(2, 10), 1)
        probs = np.full(10, 0.1)
        assert placement.default_tier_probability(probs) == pytest.approx(
            0.2
        )

    def test_tier_probabilities_sum_to_one(self):
        placement = make_placement()
        placement.move(np.arange(0, 4), 0)
        placement.move(np.arange(4, 10), 1)
        probs = np.random.default_rng(0).dirichlet(np.ones(10))
        split = placement.tier_probabilities(probs)
        assert split.sum() == pytest.approx(1.0)

    def test_unplaced_accessed_pages_rejected(self):
        placement = make_placement()
        placement.move(np.arange(0, 4), 0)  # pages 4..9 unplaced
        probs = np.full(10, 0.1)
        with pytest.raises(ConfigurationError):
            placement.tier_probabilities(probs)

    def test_length_mismatch_rejected(self):
        placement = make_placement()
        with pytest.raises(ConfigurationError):
            placement.default_tier_probability(np.full(5, 0.2))


class TestFillDefaultFirst:
    def test_packs_default_then_overflows(self):
        placement = make_placement()
        fill_default_first(placement)
        assert placement.used_bytes(0) == 500
        assert placement.used_bytes(1) == 500
        assert list(placement.pages.pages_in_tier(0)) == [0, 1, 2, 3, 4]

    def test_custom_order(self):
        placement = make_placement()
        fill_default_first(placement, order=np.arange(9, -1, -1))
        assert list(placement.pages.pages_in_tier(0)) == [5, 6, 7, 8, 9]

    def test_raises_when_nothing_fits(self):
        pages = PageArray.uniform(10, 100)
        placement = PlacementState(pages, [500, 500])
        fill_default_first(placement)  # exactly fits
        assert placement.free_bytes(0) == 0
        assert placement.free_bytes(1) == 0


class TestCapacityArbiter:
    def make(self, capacities=(1000, 2000)):
        from repro.pages.placement import CapacityArbiter

        return CapacityArbiter(list(capacities))

    def test_grants_sum_to_tier_capacity(self):
        grants = self.make().grant([600, 900])
        for t, capacity in enumerate((1000, 2000)):
            assert sum(g[t] for g in grants) == capacity

    def test_every_tenant_covers_its_working_set(self):
        working_sets = [600, 900, 1200]
        grants = self.make().grant(working_sets)
        for grant, ws in zip(grants, working_sets):
            assert sum(grant) >= ws

    def test_proportional_to_working_sets_by_default(self):
        grants = self.make().grant([500, 1500])
        # 1:3 footprint ratio carries to each tier's split.
        assert grants[0][0] == 250 and grants[1][0] == 750
        assert grants[0][1] == 500 and grants[1][1] == 1500

    def test_explicit_weights_override_footprint(self):
        grants = self.make().grant([100, 100], weights=[3.0, 1.0])
        assert grants[0][0] == 750 and grants[1][0] == 250

    def test_all_zero_weights_split_equally(self):
        grants = self.make().grant([100, 100], weights=[0.0, 0.0])
        assert grants[0] == grants[1]

    def test_shortfall_covered_from_alternate_tier_first(self):
        # Tenant 0's proportional total (10% of 3000 = 300) is below its
        # 500 B working set; the donor's alternate-tier grant shrinks
        # while the default tier keeps the proportional split.
        grants = self.make().grant([500, 2500], weights=[1.0, 9.0])
        assert sum(grants[0]) >= 500
        assert grants[0][0] == 100  # default split untouched
        assert sum(g[0] for g in grants) == 1000
        assert sum(g[1] for g in grants) == 2000

    def test_largest_remainder_is_deterministic(self):
        arbiter = self.make(capacities=(1000, 1000))
        a = arbiter.grant([333, 333, 333])
        b = arbiter.grant([333, 333, 333])
        assert a == b
        for t in range(2):
            assert sum(g[t] for g in a) == 1000

    def test_infeasible_demand_raises(self):
        with pytest.raises(CapacityError, match="exceed total"):
            self.make().grant([2000, 1500])

    def test_bad_inputs_rejected(self):
        from repro.pages.placement import CapacityArbiter

        with pytest.raises(ConfigurationError):
            CapacityArbiter([])
        with pytest.raises(ConfigurationError):
            CapacityArbiter([-1, 10])
        arbiter = self.make()
        with pytest.raises(ConfigurationError):
            arbiter.grant([])
        with pytest.raises(ConfigurationError):
            arbiter.grant([-5, 10])
        with pytest.raises(ConfigurationError):
            arbiter.grant([10, 10], weights=[1.0])
        with pytest.raises(ConfigurationError):
            arbiter.grant([10, 10], weights=[1.0, float("nan")])
