"""Tests for the rate-limited migration executor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pages.migration import MigrationExecutor, MigrationPlan
from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState, fill_default_first

PAGE = 100
QUANTUM_NS = 1e7


def make_state(n_pages=10, capacities=(500, 1000)):
    pages = PageArray.uniform(n_pages, PAGE)
    placement = PlacementState(pages, list(capacities))
    fill_default_first(placement)
    return placement


class TestPlan:
    def test_empty_plan(self):
        plan = MigrationPlan.empty()
        assert len(plan) == 0

    def test_concat_preserves_order(self):
        a = MigrationPlan(np.array([1, 2]), np.array([0, 0]))
        b = MigrationPlan(np.array([3]), np.array([1]))
        merged = MigrationPlan.concat([a, b])
        assert list(merged.page_indices) == [1, 2, 3]
        assert list(merged.dst_tiers) == [0, 0, 1]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            MigrationPlan(np.array([1, 2]), np.array([0]))


class TestExecute:
    def test_moves_within_budget(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=250)
        plan = MigrationPlan(np.array([0, 1, 2, 3]), np.full(4, 1))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.bytes_moved == 200  # 2 pages of 100 B within 250
        assert result.moves_applied == 2
        assert result.moves_deferred == 2
        assert placement.pages.tier[0] == 1
        assert placement.pages.tier[2] == 0

    def test_token_bucket_accrues_while_idle(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=100)
        # Idle for 3 quanta -> ~400 B of tokens accumulated (incl. initial).
        for __ in range(3):
            executor.execute(MigrationPlan.empty(), QUANTUM_NS)
        plan = MigrationPlan(np.array([0, 1, 2, 3]), np.full(4, 1))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.bytes_moved == 400

    def test_burst_cap_bounds_accrual(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=100,
                                     burst_quanta=2)
        for __ in range(50):
            executor.execute(MigrationPlan.empty(), QUANTUM_NS)
        plan = MigrationPlan(np.arange(5), np.full(5, 1))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.bytes_moved == 200  # capped at 2 quanta worth

    def test_budget_override_caps_below_tokens(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=1000)
        plan = MigrationPlan(np.arange(4), np.full(4, 1))
        result = executor.execute(plan, QUANTUM_NS, budget_bytes=150)
        assert result.bytes_moved == 100

    def test_capacity_violation_skips_but_continues(self):
        placement = make_state()  # tier0 full (5 pages), tier1 has 5
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=10_000)
        # Try to promote pages 5,6 into the full tier 0, then demote 0.
        plan = MigrationPlan(np.array([5, 6, 0]), np.array([0, 0, 1]))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.moves_skipped == 2
        assert result.moves_applied == 1
        assert placement.pages.tier[0] == 1

    def test_demote_then_promote_order_works(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=10_000)
        plan = MigrationPlan(np.array([0, 5]), np.array([1, 0]))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.moves_applied == 2
        assert placement.pages.tier[0] == 1
        assert placement.pages.tier[5] == 0

    def test_traffic_charged_to_both_tiers(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=10_000)
        plan = MigrationPlan(np.array([0, 1]), np.array([1, 1]))
        result = executor.execute(plan, QUANTUM_NS)
        assert result.read_bytes_per_tier[0] == 200   # read at source
        assert result.write_bytes_per_tier[1] == 200  # written at dest
        reads = result.tier_traffic[0]
        writes = result.tier_traffic[1]
        assert reads[0].read_fraction == 1.0
        assert writes[0].read_fraction == 0.0
        assert reads[0].bandwidth == pytest.approx(200 / QUANTUM_NS)

    def test_same_tier_moves_are_free(self):
        placement = make_state()
        executor = MigrationExecutor(placement, limit_bytes_per_quantum=100)
        plan = MigrationPlan(np.array([0]), np.array([0]))  # already there
        result = executor.execute(plan, QUANTUM_NS)
        assert result.bytes_moved == 0
        assert result.moves_applied == 0

    def test_rejects_bad_construction(self):
        placement = make_state()
        with pytest.raises(ConfigurationError):
            MigrationExecutor(placement, limit_bytes_per_quantum=0)
        with pytest.raises(ConfigurationError):
            MigrationExecutor(placement, 100, burst_quanta=0)

    def test_rejects_bad_quantum(self):
        placement = make_state()
        executor = MigrationExecutor(placement, 100)
        with pytest.raises(ConfigurationError):
            executor.execute(MigrationPlan.empty(), 0.0)
