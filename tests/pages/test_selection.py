"""Tests for probability-budgeted page selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pages.selection import select_pages_by_probability


def uniform_sizes(n, size=100):
    return np.full(n, size, dtype=np.int64)


class TestBudgets:
    def test_respects_probability_budget(self):
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(4), np.arange(4),
            dp_budget=0.5, byte_budget=10_000,
        )
        assert probs[chosen].sum() <= 0.5 + 1e-12
        # 0.4 taken, 0.3 skipped (overshoot), 0.1... -> greedy hottest
        assert 0 in chosen

    def test_respects_byte_budget(self):
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(4), np.arange(4),
            dp_budget=1.0, byte_budget=250,
        )
        assert len(chosen) == 2

    def test_skips_individually_overshooting_pages(self):
        """A small dp budget picks cooler pages, like Colloid's binned
        iteration."""
        probs = np.array([0.5, 0.05, 0.04, 0.01])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(4), np.arange(4),
            dp_budget=0.1, byte_budget=10_000,
        )
        assert 0 not in chosen
        assert set(chosen) == {1, 2, 3}

    def test_zero_budgets_select_nothing(self):
        probs = np.array([0.5, 0.5])
        assert select_pages_by_probability(
            probs, uniform_sizes(2), np.arange(2), 0.0, 1000
        ).size == 0
        assert select_pages_by_probability(
            probs, uniform_sizes(2), np.arange(2), 1.0, 0
        ).size == 0

    def test_empty_candidates(self):
        probs = np.array([0.5, 0.5])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(2), np.empty(0, dtype=np.int64), 1.0, 1000
        )
        assert chosen.size == 0

    def test_all_fit_fast_path(self):
        probs = np.full(10, 0.05)
        chosen = select_pages_by_probability(
            probs, uniform_sizes(10), np.arange(10), 1.0, 10_000
        )
        assert len(chosen) == 10

    def test_hottest_first_ordering(self):
        probs = np.array([0.1, 0.4, 0.2, 0.3])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(4), np.arange(4), 0.45, 10_000
        )
        assert list(chosen)[:1] == [1]  # hottest considered first

    def test_given_order_respected_when_disabled(self):
        probs = np.array([0.1, 0.4, 0.2, 0.3])
        chosen = select_pages_by_probability(
            probs, uniform_sizes(4), np.array([3, 2, 1, 0]),
            0.45, 10_000, hottest_first=False,
        )
        assert list(chosen)[0] == 3

    def test_rejects_negative_budgets(self):
        probs = np.array([0.5])
        with pytest.raises(ConfigurationError):
            select_pages_by_probability(
                probs, uniform_sizes(1), np.array([0]), -0.1, 100
            )


class TestSelectionProperties:
    @given(
        st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1,
                 max_size=40),
        st.floats(min_value=0.0, max_value=2.0),
        st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=80, deadline=None)
    def test_budgets_never_violated(self, raw_probs, dp, byte_budget):
        probs = np.array(raw_probs)
        probs = probs / probs.sum()
        sizes = uniform_sizes(len(probs))
        chosen = select_pages_by_probability(
            probs, sizes, np.arange(len(probs)), dp, byte_budget
        )
        assert probs[chosen].sum() <= dp + 1e-9
        assert sizes[chosen].sum() <= byte_budget
        assert len(set(chosen.tolist())) == len(chosen)  # no duplicates

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_generous_budgets_take_everything(self, n):
        probs = np.full(n, 1.0 / n)
        chosen = select_pages_by_probability(
            probs, uniform_sizes(n), np.arange(n), 2.0, 10**9
        )
        assert len(chosen) == n
