"""Tests for the related-work baselines (BATMAN, Carrefour)."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.loop import SimulationLoop
from repro.tiering.batman import BatmanSystem
from repro.tiering.carrefour import CarrefourSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def run(system, machine, contention=0, duration=8.0, seed=5):
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    loop = SimulationLoop(machine=machine, workload=workload,
                          system=system, contention=contention, seed=seed)
    return loop.run(duration_s=duration)


class TestBatman:
    def test_from_bandwidths_target(self):
        system = BatmanSystem.from_bandwidths(205.0, 75.0)
        assert system.target_share == pytest.approx(205.0 / 280.0)

    def test_steers_toward_target_share(self, small_machine):
        system = BatmanSystem(target_share=0.6)
        metrics = run(system, small_machine)
        measured = metrics.p_measured[-50:].mean()
        assert measured == pytest.approx(0.6, abs=0.12)

    def test_rate_target_misreacts_to_antagonist(self, small_machine):
        """BATMAN's flaw (§6): it balances *rates*, not latencies. The
        antagonist's default-tier traffic counts toward the measured
        share, so under contention the controller evicts the entire
        application from the default tier chasing an unreachable rate
        target, instead of finding the latency-balanced split."""
        quiet = run(BatmanSystem(target_share=0.6), small_machine,
                    contention=0)
        loud = run(BatmanSystem(target_share=0.6), small_machine,
                   contention=3, duration=10.0)
        assert quiet.p_true[-50:].mean() == pytest.approx(0.6, abs=0.15)
        assert loud.p_true[-50:].mean() < 0.1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BatmanSystem(target_share=0.0)
        with pytest.raises(ConfigurationError):
            BatmanSystem(target_share=0.5, gain=0.0)


class TestCarrefour:
    def test_target_is_equal_share(self):
        assert CarrefourSystem().target_share == pytest.approx(0.5)
        assert CarrefourSystem(n_tiers=4).target_share == pytest.approx(
            0.25
        )

    def test_balances_rates_even_when_suboptimal(self, small_machine):
        """Carrefour pushes toward 50/50 rates at 0x even though the
        latency-optimal placement is hot-packed (§6's critique)."""
        metrics = run(CarrefourSystem(), small_machine, duration=10.0)
        measured = metrics.p_measured[-50:].mean()
        assert measured < 0.75  # pushed well below the hot-packed ~0.94

    def test_name(self):
        assert CarrefourSystem().name == "carrefour"
