"""Tests for the tiering base interface and the pack-hottest policy."""

import numpy as np

from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState
from repro.tiering.base import QuantumDecision, pack_hottest_plan
from repro.tiering.static import StaticPlacementSystem


def make_placement(tiers, page_bytes=100, capacities=None):
    pages = PageArray.uniform(len(tiers), page_bytes)
    if capacities is None:
        capacities = [page_bytes * len(tiers)] * 2
    placement = PlacementState(pages, capacities)
    arr = np.asarray(tiers)
    for t in (0, 1):
        placement.move(np.nonzero(arr == t)[0], t)
    return placement


class TestPackHottestPlan:
    def test_promotes_hot_alternate_pages_hottest_first(self):
        placement = make_placement([0, 1, 1, 1])
        hotness = np.array([1.0, 5.0, 9.0, 0.1])
        hot = hotness >= 5.0
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=10**6)
        promoted = plan.page_indices[plan.dst_tiers == 0]
        assert list(promoted) == [2, 1]

    def test_demotes_coldest_when_capacity_needed(self):
        # Default tier full with capacity 200 (pages 0, 1).
        placement = make_placement([0, 0, 1, 1], capacities=[200, 400])
        hotness = np.array([0.5, 0.1, 9.0, 8.0])
        hot = hotness >= 8.0
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=10**6)
        demoted = plan.page_indices[plan.dst_tiers == 1]
        # Coldest default page (1) demoted first.
        assert list(demoted)[0] == 1
        # Demotions precede promotions in the plan.
        first_promo = np.argmax(plan.dst_tiers == 0)
        assert (plan.dst_tiers[:first_promo] == 1).all()

    def test_hot_default_pages_never_demoted(self):
        placement = make_placement([0, 0, 1, 1], capacities=[200, 400])
        hotness = np.array([9.0, 8.5, 8.0, 7.0])
        hot = hotness >= 7.0
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=10**6)
        demoted = set(plan.page_indices[plan.dst_tiers == 1].tolist())
        assert 0 not in demoted and 1 not in demoted

    def test_max_bytes_caps_promotions(self):
        placement = make_placement([1, 1, 1, 1])
        hotness = np.array([4.0, 3.0, 2.0, 1.0])
        hot = np.ones(4, dtype=bool)
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=250)
        assert len(plan.page_indices[plan.dst_tiers == 0]) == 2

    def test_no_hot_pages_no_plan(self):
        placement = make_placement([0, 1])
        plan = pack_hottest_plan(
            placement, np.zeros(2), np.zeros(2, dtype=bool),
            max_bytes=10**6,
        )
        assert len(plan) == 0

    def test_free_slack_triggers_extra_demotion(self):
        placement = make_placement([0, 0, 1, 1], capacities=[200, 400])
        hotness = np.array([1.0, 2.0, 0.0, 0.0])
        hot = np.zeros(4, dtype=bool)
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=10**6,
                                 free_slack_bytes=100)
        demoted = plan.page_indices[plan.dst_tiers == 1]
        assert len(demoted) >= 1
        assert demoted[0] == 0  # coldest first


class TestTieringSystemBase:
    def test_idle_decision(self):
        decision = QuantumDecision.idle()
        assert len(decision.plan) == 0
        assert decision.budget_bytes is None

    def test_static_system_never_migrates(self):
        system = StaticPlacementSystem()
        placement = make_placement([0, 1])
        system.attach(placement)
        decision = system.quantum(None)
        assert len(decision.plan) == 0

    def test_cpu_work_accounting(self):
        system = StaticPlacementSystem()
        system.account("things", 3)
        system.account("things", 2)
        assert system.cpu_work == {"things": 5}

    def test_throughput_scale_default(self):
        assert StaticPlacementSystem().throughput_scale() == 1.0


class TestPackHottestDeterminism:
    """Tie-breaking is pinned: equal-hotness pages are taken in page-
    index order (stable sort), so plans are reproducible bit-for-bit."""

    def test_equal_hotness_promotions_break_ties_by_index(self):
        placement = make_placement([0, 1, 1, 1, 1])
        hotness = np.array([0.0, 5.0, 5.0, 5.0, 5.0])
        hot = hotness >= 5.0
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=250)
        promoted = plan.page_indices[plan.dst_tiers == 0]
        assert list(promoted) == [1, 2]

    def test_equal_coldness_demotions_break_ties_by_index(self):
        placement = make_placement([0, 0, 0, 1, 1],
                                   capacities=[300, 500])
        hotness = np.array([1.0, 1.0, 1.0, 9.0, 9.0])
        hot = hotness >= 9.0
        plan = pack_hottest_plan(placement, hotness, hot, max_bytes=10**6)
        demoted = plan.page_indices[plan.dst_tiers == 1]
        assert list(demoted) == sorted(demoted)
        assert demoted[0] == 0

    def test_repeated_calls_produce_identical_plans(self):
        rng = np.random.default_rng(3)
        # Many duplicated hotness values to stress tie handling.
        hotness = rng.integers(0, 4, size=64).astype(float)
        hot = hotness >= 2.0
        tiers = rng.integers(0, 2, size=64)
        plans = []
        for _ in range(3):
            placement = make_placement(list(tiers),
                                       capacities=[4000, 4000])
            plans.append(pack_hottest_plan(placement, hotness, hot,
                                           max_bytes=1500))
        for plan in plans[1:]:
            np.testing.assert_array_equal(plan.page_indices,
                                          plans[0].page_indices)
            np.testing.assert_array_equal(plan.dst_tiers,
                                          plans[0].dst_tiers)
