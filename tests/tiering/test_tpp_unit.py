"""Unit tests for TPP's internal heuristics."""

import numpy as np

from repro.pages.pagestate import PageArray
from repro.pages.placement import PlacementState
from repro.tiering.tpp import TppSystem


def attached_system(**kwargs) -> TppSystem:
    system = TppSystem(**kwargs)
    pages = PageArray.uniform(20, 100)
    placement = PlacementState(pages, [1000, 2000])
    placement.move(np.arange(10), 0)
    placement.move(np.arange(10, 20), 1)
    system.attach(placement)
    return system


class TestThresholdAdaptation:
    def test_grows_when_too_few_hot(self):
        system = attached_system(initial_hot_ttf_ns=1000.0)
        system._adapt_threshold(n_hot_faults=1, n_faults=10)
        assert system.hot_ttf_ns > 1000.0

    def test_shrinks_when_too_many_hot(self):
        system = attached_system(initial_hot_ttf_ns=1000.0)
        system._adapt_threshold(n_hot_faults=9, n_faults=10)
        assert system.hot_ttf_ns < 1000.0

    def test_holds_in_band(self):
        system = attached_system(initial_hot_ttf_ns=1000.0)
        system._adapt_threshold(n_hot_faults=5, n_faults=10)
        assert system.hot_ttf_ns == 1000.0

    def test_no_faults_no_change(self):
        system = attached_system(initial_hot_ttf_ns=1000.0)
        system._adapt_threshold(n_hot_faults=0, n_faults=0)
        assert system.hot_ttf_ns == 1000.0


class TestKswapd:
    def test_below_watermark_no_demotion(self):
        system = attached_system(high_watermark=0.99,
                                 low_watermark=0.97)
        placement = system._placement
        # Tier 0 usage: 10 pages * 100 B = 1000 B == capacity -> above
        # the 0.99 watermark, so demotions fire.
        demotions = system.kswapd_demotions(placement)
        assert demotions.size > 0
        # Free some space below the watermark.
        placement.move(demotions, 1)
        assert system.kswapd_demotions(placement).size == 0

    def test_demotes_coldest_by_time_to_fault(self):
        system = attached_system()
        placement = system._placement
        # Pages 0-4 recently faulted fast (hot), 5-9 slow (cold).
        system._last_ttf_ns[:5] = 1_000.0
        system._last_ttf_ns[5:10] = 1_000_000.0
        demotions = system.kswapd_demotions(placement)
        assert demotions.size > 0
        assert set(demotions.tolist()) <= set(range(5, 10))
