"""Fault-driven systems report demotions alongside promotions in their
``tpp_promotion`` trace events."""

import pytest

from repro.core.integrate import TppColloidSystem
from repro.experiments.common import scaled_machine
from repro.obs.tracer import Tracer
from repro.runtime.loop import SimulationLoop
from repro.tiering.tpp import TppSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def promotion_events(system):
    tracer = Tracer(ring_size=2048)
    loop = SimulationLoop(
        machine=scaled_machine(FAST_SCALE),
        workload=GupsWorkload(scale=FAST_SCALE, seed=7),
        system=system,
        contention=1,
        seed=7,
        tracer=tracer,
    )
    loop.run(duration_s=1.0)
    return [e for e in tracer.events()
            if e.get("type") == "tpp_promotion"]


@pytest.mark.parametrize("system_cls", [TppSystem, TppColloidSystem])
def test_events_carry_both_directions(system_cls):
    events = promotion_events(system_cls())
    assert events
    for event in events:
        assert event["n_promoted"] >= 0
        assert event["n_demoted"] >= 0
    # TPP under contention both promotes on faults and demotes via
    # kswapd; a run that never reports either would make the new
    # field vacuous.
    assert any(e["n_promoted"] > 0 for e in events)
    assert any(e["n_demoted"] > 0 for e in events)
