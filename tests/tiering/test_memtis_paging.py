"""Tests for MEMTIS hugepage split/coalesce dynamics."""

import pytest

from repro.runtime.loop import SimulationLoop
from repro.tiering.memtis import MemtisSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def run(system, machine, duration, seed=5):
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    loop = SimulationLoop(machine=machine, workload=workload,
                          system=system, seed=seed)
    loop.run(duration_s=duration)
    return system


class TestSplitCoalesce:
    def test_split_happens_once_after_warmup(self, small_machine):
        system = run(MemtisSystem(split_warmup_s=0.5), small_machine, 3.0)
        assert system.cpu_work.get("hugepage_splits", 0) > 0
        # One-shot: the split count equals the initial split population
        # plus nothing further.
        assert system._did_split

    def test_coalescing_is_much_slower_than_splitting(self, small_machine):
        """§2.2: coalescing 'takes significantly longer than the time it
        takes for this workload to reach steady-state'."""
        system = run(
            MemtisSystem(split_warmup_s=0.5, coalesce_pages_per_s=2.0),
            small_machine, 5.0,
        )
        splits = system.cpu_work.get("hugepage_splits", 0)
        coalesces = system.cpu_work.get("hugepage_coalesces", 0)
        assert splits > 0
        assert coalesces < 0.05 * splits  # barely a dent within the run

    def test_penalty_decays_as_pages_coalesce(self, small_machine):
        fast = MemtisSystem(split_warmup_s=0.2,
                            coalesce_pages_per_s=1e6)  # instant repair
        run(fast, small_machine, 3.0)
        assert not fast.split_pages.any()
        assert fast.throughput_scale() == 1.0

    def test_penalty_persists_with_slow_coalescing(self, small_machine):
        slow = MemtisSystem(split_warmup_s=0.2, coalesce_pages_per_s=0.0)
        run(slow, small_machine, 3.0)
        assert slow.split_pages.any()
        assert slow.throughput_scale() < 1.0

    def test_rejects_negative_coalesce_rate(self):
        with pytest.raises(Exception):
            MemtisSystem(coalesce_pages_per_s=-1.0)
