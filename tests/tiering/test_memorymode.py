"""Tests for the hardware-managed memory-mode baseline."""

import pytest

from repro.runtime.loop import SimulationLoop
from repro.tiering.memorymode import MemoryModeSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def run(machine, contention=0, duration=5.0, seed=5):
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    system = MemoryModeSystem()
    loop = SimulationLoop(machine=machine, workload=workload,
                          system=system, contention=contention, seed=seed)
    metrics = loop.run(duration_s=duration)
    return system, metrics


class TestMemoryMode:
    def test_pages_homed_in_alternate_tier(self, small_machine):
        workload = GupsWorkload(scale=FAST_SCALE, seed=5)
        system = MemoryModeSystem()
        loop = SimulationLoop(machine=small_machine, workload=workload,
                              system=system, seed=5)
        loop.run(duration_s=1.0)
        # Every page's home is the alternate tier; the default tier acts
        # as a cache, visible only through the traffic split.
        assert (loop.placement.pages.tier == 1).all()
        assert loop.metrics.p_true[-1] == pytest.approx(system.hit_rate,
                                                        abs=0.05)

    def test_hit_rate_tracks_hot_set(self, small_machine):
        """GUPS: the hot set fits in the cache, so the hit rate should
        approach the hot access fraction plus the cached cold share."""
        system, metrics = run(small_machine, duration=5.0)
        assert 0.8 < system.hit_rate < 1.0

    def test_traffic_follows_hit_rate_not_placement(self, small_machine):
        system, metrics = run(small_machine, duration=5.0)
        bw = metrics.app_tier_bandwidth[-20:].mean(axis=0)
        default_share = bw[0] / bw.sum()
        assert default_share == pytest.approx(system.hit_rate, abs=0.1)

    def test_never_migrates(self, small_machine):
        __, metrics = run(small_machine, duration=3.0)
        assert metrics.migration_bytes.sum() == 0

    def test_contention_agnostic_like_software_baselines(self,
                                                         small_machine):
        """§6: hardware-managed tiering shares the flaw — hot accesses
        keep hitting the (contended) default tier."""
        quiet_sys, quiet = run(small_machine, contention=0)
        loud_sys, loud = run(small_machine, contention=3, duration=6.0)
        # Hit rate (and thus default-tier share) barely changes...
        assert loud_sys.hit_rate == pytest.approx(quiet_sys.hit_rate,
                                                  abs=0.05)
        # ...so throughput collapses under contention.
        assert loud.throughput[-50:].mean() < (
            0.55 * quiet.throughput[-50:].mean()
        )

    def test_rejects_bad_decay(self):
        with pytest.raises(Exception):
            MemoryModeSystem(estimate_decay=1.5)
