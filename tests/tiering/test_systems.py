"""Behavioural tests for the three baseline systems on the full loop.

Uses a small-scale GUPS run; the assertions are the paper's qualitative
claims about the baselines: they identify the hot set, pack it into the
default tier, and keep it there regardless of contention.
"""

import pytest

from repro.core.integrate import with_colloid
from repro.errors import ConfigurationError
from repro.runtime.loop import SimulationLoop
from repro.tiering.hemem import HememSystem
from repro.tiering.memtis import MemtisSystem
from repro.tiering.tpp import TppSystem
from repro.workloads.gups import GupsWorkload
from tests.conftest import FAST_SCALE


def run(system, small_machine, contention=0, duration=6.0, seed=5):
    workload = GupsWorkload(scale=FAST_SCALE, seed=seed)
    loop = SimulationLoop(
        machine=small_machine,
        workload=workload,
        system=system,
        contention=contention,
        seed=seed,
    )
    metrics = loop.run(duration_s=duration)
    return metrics


class TestHemem:
    def test_converges_to_hot_packed_at_0x(self, small_machine):
        metrics = run(HememSystem(), small_machine)
        tail = metrics.p_true[-50:]
        assert tail.mean() > 0.85  # ~all hot accesses on default tier

    def test_keeps_hot_packed_under_contention(self, small_machine):
        """The paper's critique: contention-agnostic placement."""
        metrics = run(HememSystem(), small_machine, contention=3)
        assert metrics.p_true[-50:].mean() > 0.85

    def test_hot_classification_follows_samples(self, small_machine):
        system = HememSystem()
        run(system, small_machine, duration=2.0)
        hot = system.hot_mask()
        # roughly the hot third of pages classified hot
        assert 0.15 < hot.mean() < 0.6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            HememSystem(hot_threshold=0.0)
        with pytest.raises(ConfigurationError):
            HememSystem(action_period_s=0.0)


class TestMemtis:
    def test_converges_to_hot_packed(self, small_machine):
        metrics = run(MemtisSystem(), small_machine, duration=10.0)
        assert metrics.p_true[-50:].mean() > 0.8

    def test_acts_on_500ms_cadence(self, small_machine):
        metrics = run(MemtisSystem(), small_machine, duration=3.0)
        moved = metrics.migration_bytes > 0
        # Copy debt spreads migrations, but activity must be much sparser
        # than HeMem's every-quantum cadence early on.
        assert 0 < moved.sum() < len(moved)

    def test_split_penalty_applies_after_warmup(self, small_machine):
        system = MemtisSystem(split_warmup_s=0.5)
        run(system, small_machine, duration=2.0)
        assert system.split_pages.any()
        assert system.throughput_scale() < 1.0

    def test_splitting_can_be_disabled(self, small_machine):
        system = MemtisSystem(enable_splitting=False)
        run(system, small_machine, duration=2.0)
        assert not system.split_pages.any()
        assert system.throughput_scale() == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MemtisSystem(demotion_watermark=1.0)
        with pytest.raises(ConfigurationError):
            MemtisSystem(split_fraction=1.5)


class TestTpp:
    def test_slowly_converges_toward_hot_packed(self, small_machine):
        metrics = run(TppSystem(), small_machine, duration=20.0)
        start = metrics.p_true[:50].mean()
        end = metrics.p_true[-50:].mean()
        assert end > start
        assert end > 0.7

    def test_respects_kswapd_watermarks(self, small_machine):
        system = TppSystem(high_watermark=0.99, low_watermark=0.97)
        run(system, small_machine, duration=10.0)
        placement = system._placement
        used_fraction = placement.used_bytes(0) / placement.capacity_bytes(0)
        assert used_fraction <= 0.995

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TppSystem(scan_fraction_per_quantum=0.0)
        with pytest.raises(ConfigurationError):
            TppSystem(high_watermark=0.9, low_watermark=0.95)


class TestWithColloidFactory:
    def test_builds_each_integration(self):
        assert with_colloid("hemem").name == "hemem+colloid"
        assert with_colloid("memtis").name == "memtis+colloid"
        assert with_colloid("tpp").name == "tpp+colloid"

    def test_rejects_unknown_base(self):
        with pytest.raises(ConfigurationError):
            with_colloid("nimble")
