"""Tests for unit helpers."""

import pytest

from repro import units


class TestCapacity:
    def test_binary_units(self):
        assert units.kib(1) == 1024
        assert units.mib(1) == 1024**2
        assert units.gib(1) == 1024**3
        assert units.gib(1.5) == int(1.5 * 1024**3)


class TestBandwidth:
    def test_gbps_identity(self):
        """1 B/ns == 1 GB/s — the convenient internal convention."""
        assert units.gbps(205.0) == 205.0
        assert units.to_gbps(1.0) == 1.0

    def test_request_rate_roundtrip(self):
        rate = units.requests_per_ns(64.0)
        assert rate == pytest.approx(1.0)
        assert units.bandwidth_from_requests(rate) == pytest.approx(64.0)


class TestTime:
    def test_conversions(self):
        assert units.seconds_to_ns(1.0) == 1e9
        assert units.ms_to_ns(10.0) == 1e7
        assert units.us_to_ns(1.0) == 1e3
        assert units.ns_to_seconds(5e8) == pytest.approx(0.5)

    def test_cacheline(self):
        assert units.CACHELINE_BYTES == 64
