"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that environments without the ``wheel`` package (where PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``) can still do

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
