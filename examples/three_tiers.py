"""Three memory tiers: the §3.1 generalization in action.

Builds a machine with local DDR, a bandwidth-constrained remote socket,
and a CXL-attached tier, then shows the multi-tier latency balancer
spreading the hot set so that no tier's loaded latency runs away — the
recursive form of the balancing principle the paper sketches.

Run:
    python examples/three_tiers.py
"""

import dataclasses

from repro import GupsWorkload, SimulationLoop, paper_testbed
from repro.core import MultiTierColloidSystem
from repro.tiering import HememSystem
from repro.units import gib

SCALE = 0.0625
CONTENTION = 3


def three_tier_machine():
    base = paper_testbed()
    # Narrow the remote socket so one alternate tier cannot absorb the
    # hot set alone.
    remote = dataclasses.replace(base.tiers[1], theoretical_bandwidth=24.0)
    cxl = dataclasses.replace(
        base.tiers[1],
        name="cxl-memory",
        unloaded_latency_ns=180.0,
        theoretical_bandwidth=24.0,
        capacity_bytes=gib(96),
    )
    machine = dataclasses.replace(base,
                                  tiers=(base.tiers[0], remote, cxl))
    return machine.with_tiers(
        tuple(t.scaled_capacity(SCALE) for t in machine.tiers)
    )


def run(system, label):
    loop = SimulationLoop(
        machine=three_tier_machine(),
        workload=GupsWorkload(scale=SCALE, seed=3),
        system=system,
        contention=CONTENTION,
        seed=3,
    )
    metrics = loop.run(duration_s=10.0)
    tail = len(metrics) // 4
    throughput = metrics.throughput[-tail:].mean()
    latencies = metrics.latencies_ns[-tail:].mean(axis=0)
    bandwidth = metrics.app_tier_bandwidth[-tail:].mean(axis=0)
    print(f"\n{label}: {throughput:.1f} GB/s")
    for name, lat, bw in zip(("local-ddr", "remote-socket", "cxl-memory"),
                             latencies, bandwidth):
        print(f"  {name:14s} latency {lat:5.0f} ns   "
              f"app bandwidth {bw:5.1f} GB/s")
    return throughput


def main():
    print(f"Three-tier machine, GUPS at {CONTENTION}x contention")
    baseline = run(HememSystem(), "hemem (hottest-pages placement)")
    balanced = run(MultiTierColloidSystem(),
                   "multi-tier latency balancing")
    print(f"\nBalancing speedup: {balanced / baseline:.2f}x")


if __name__ == "__main__":
    main()
