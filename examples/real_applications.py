"""Real applications on tiered memory (§5.3).

Builds the three application workload models — GAPBS PageRank (on a real
networkx power-law graph), Silo/YCSB-C (Zipfian key-value lookups), and
CacheLib/HeMemKV (4 KB-value cache traffic) — sizes the default tier to a
third of each working set, and compares MEMTIS with and without Colloid
under contention.

Run:
    python examples/real_applications.py
"""

import dataclasses

import networkx as nx

from repro import (
    CacheLibWorkload,
    MemtisSystem,
    SiloYcsbWorkload,
    SimulationLoop,
)
from repro.core import MemtisColloidSystem
from repro.experiments.common import scaled_machine
from repro.workloads.graph import GraphWorkload

SCALE = 0.0625
CONTENTION = 3


def make_workloads():
    # A real graph for PageRank: scale-free, like the Twitter graph the
    # paper uses (just much smaller).
    graph = nx.barabasi_albert_graph(20_000, 8, seed=7)
    return {
        "gapbs-pagerank": GraphWorkload.from_networkx(
            graph, page_bytes=64 * 1024, bytes_per_vertex=16
        ),
        "silo-ycsbc": SiloYcsbWorkload(scale=SCALE, seed=7),
        "cachelib-hememkv": CacheLibWorkload(scale=SCALE, seed=7),
    }


def machine_for(workload):
    machine = scaled_machine(SCALE)
    third = max(workload.page_bytes * 2, workload.working_set_bytes // 3)
    default = dataclasses.replace(machine.tiers[0], capacity_bytes=third)
    alternate = dataclasses.replace(
        machine.tiers[1],
        capacity_bytes=max(machine.tiers[1].capacity_bytes,
                           workload.working_set_bytes),
    )
    return machine.with_tiers((default, alternate))


def run(workload, system):
    loop = SimulationLoop(
        machine=machine_for(workload),
        workload=workload,
        system=system,
        contention=CONTENTION,
        seed=7,
    )
    metrics = loop.run(duration_s=12.0)
    return metrics.throughput[-len(metrics) // 4:].mean()


def main():
    print(f"Real applications at {CONTENTION}x contention, "
          "default tier = working set / 3\n")
    for name, workload in make_workloads().items():
        baseline = run(workload, MemtisSystem())
        colloid = run(workload, MemtisColloidSystem())
        print(f"{name:20s} memtis {baseline:6.1f} GB/s   "
              f"memtis+colloid {colloid:6.1f} GB/s   "
              f"gain {colloid / baseline:.2f}x")


if __name__ == "__main__":
    main()
