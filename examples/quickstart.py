"""Quickstart: see the paper's headline result in one page of code.

Runs GUPS on the calibrated two-tier testbed under heavy memory
interconnect contention, once with vanilla HeMem (hottest pages packed in
the default tier) and once with HeMem+Colloid (placement adapted to
balance the tiers' loaded access latencies), and prints the throughput,
latency, and placement comparison.

Run:
    python examples/quickstart.py
"""

from repro import GupsWorkload, HememSystem, SimulationLoop, paper_testbed
from repro.core import HememColloidSystem
from repro.experiments.common import scaled_machine

#: Shrink the paper's 72 GB geometry so the example runs in seconds.
SCALE = 0.125
#: 3x antagonist intensity: 15 cores of sequential traffic pinned to the
#: default tier (§2.1).
CONTENTION = 3


def run(system, label):
    loop = SimulationLoop(
        machine=scaled_machine(SCALE),
        workload=GupsWorkload(scale=SCALE, seed=1),
        system=system,
        contention=CONTENTION,
        seed=1,
    )
    metrics = loop.run(duration_s=10.0)
    tail = len(metrics) // 4
    throughput = metrics.throughput[-tail:].mean()
    l_d, l_a = metrics.latencies_ns[-tail:].mean(axis=0)
    p = metrics.p_true[-tail:].mean()
    print(f"{label:16s} throughput {throughput:6.1f} GB/s   "
          f"L_D {l_d:5.0f} ns   L_A {l_a:5.0f} ns   "
          f"default-tier share of accesses {p:5.1%}")
    return throughput


def main():
    print(f"GUPS at {CONTENTION}x memory-interconnect contention\n")
    baseline = run(HememSystem(), "hemem")
    colloid = run(HememColloidSystem(), "hemem+colloid")
    print(f"\nColloid speedup: {colloid / baseline:.2f}x  "
          "(paper: ~2.3x at 3x intensity)")


if __name__ == "__main__":
    main()
