"""Trace replay: drive the stack with your own access trace.

Synthesizes a page-access stream with a diurnal hot-spot drift (the kind
of pattern a production memory trace exhibits), bins it into epochs with
:class:`repro.workloads.trace.TraceWorkload`, runs HeMem+Colloid over it
under contention, and exports the per-quantum time series to CSV for
external analysis.

Run:
    python examples/trace_replay.py [output.csv]
"""

import sys

import numpy as np

from repro import SimulationLoop
from repro.core import HememColloidSystem
from repro.experiments.common import scaled_machine
from repro.runtime.export import to_csv
from repro.workloads.trace import TraceWorkload

SCALE = 0.0625
N_PAGES = 2304  # matches the scaled 4.5 GiB working set at 2 MiB pages


def synthesize_stream(n_accesses=200_000, duration_s=20.0, seed=9):
    """A hot spot that drifts across the address space over time."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, duration_s, size=n_accesses))
    centre = (times / duration_s) * N_PAGES * 0.6 + N_PAGES * 0.2
    hot = rng.normal(centre, N_PAGES * 0.03).astype(int) % N_PAGES
    cold = rng.integers(0, N_PAGES, size=n_accesses)
    take_hot = rng.random(n_accesses) < 0.9
    pages = np.where(take_hot, hot, cold)
    return pages, times


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace_replay.csv"
    pages, times = synthesize_stream()
    workload = TraceWorkload.from_page_stream(
        pages, times, n_pages=N_PAGES, epoch_s=2.0,
    )
    print(f"trace: {len(pages)} accesses over {times[-1]:.0f}s, "
          f"{workload.n_epochs} epochs, {N_PAGES} pages")
    loop = SimulationLoop(
        machine=scaled_machine(SCALE),
        workload=workload,
        system=HememColloidSystem(),
        contention=1,
        seed=9,
    )
    metrics = loop.run(duration_s=20.0)
    seconds = np.floor(metrics.time_s).astype(int)
    for s in np.unique(seconds):
        window = seconds == s
        print(f"  t={s:3d}s throughput {metrics.throughput[window].mean():6.1f} GB/s  "
              f"default share {metrics.p_true[window].mean():5.1%}")
    path = to_csv(metrics, out_path)
    print(f"\nwrote {path} "
          f"({len(metrics)} quanta; columns: time, throughput, latencies, "
          "placement, migration)")


if __name__ == "__main__":
    main()
