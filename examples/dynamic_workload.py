"""Dynamic workloads: watch Colloid adapt in real time (§5.2).

Prints per-second throughput traces for two disturbances:

1. A hot-set shift: the GUPS hot region moves to a new random location
   mid-run. Both HeMem and HeMem+Colloid dip and recover at the same
   timescale — Colloid does not slow the underlying system down.
2. A contention change: a 3x antagonist switches on mid-run. Vanilla
   HeMem never reacts (it is contention-agnostic); HeMem+Colloid detects
   the inverted latency ordering through its CHA measurements, migrates
   the hot set to the alternate tier, and converges to a much higher
   operating point.

Run:
    python examples/dynamic_workload.py
"""

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig9 import run_one

CONFIG = ExperimentConfig(
    scale=0.0625,
    seed=42,
    migration_limit_bytes=8 * 1024 * 1024,
)
SHIFT_S = 8.0
DURATION_S = 22.0


def print_trace(label, trace):
    print(f"\n{label} (disturbance at t={trace.disturbance_time_s:.0f}s)")
    bar_unit = max(trace.throughput) / 40
    for t, v in zip(trace.times_s, trace.throughput):
        marker = " <-- change" if t == trace.disturbance_time_s else ""
        print(f"  t={t:3.0f}s  {v:6.1f} GB/s  "
              f"{'#' * int(v / bar_unit)}{marker}")
    conv = trace.convergence_s()
    if conv is not None:
        print(f"  converged {conv:.0f}s after the disturbance")


def main():
    timeline = (SHIFT_S, DURATION_S)
    for scenario, title in (
        ("hotshift-0x", "Hot-set shift at 0x contention"),
        ("contention", "Contention change 0x -> 3x"),
    ):
        print(f"\n=== {title} ===")
        for system in ("hemem", "hemem+colloid"):
            trace = run_one(system, scenario, CONFIG, timeline=timeline)
            print_trace(system, trace)


if __name__ == "__main__":
    main()
