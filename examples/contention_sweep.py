"""Contention sweep: reproduce the Figure 1/5 story end to end.

For each memory-interconnect contention intensity (0x-3x antagonist),
runs all three baseline tiering systems with and without Colloid, plus
the manual best-case placement sweep (§2.1's mbind methodology), and
prints the resulting table — the reproduction's version of Figures 1
and 5 side by side.

Run:
    python examples/contention_sweep.py          # reduced grid, ~2 min
    python examples/contention_sweep.py --full   # all four intensities
"""

import sys

from repro.experiments import fig5
from repro.experiments.common import ExperimentConfig


def main():
    full = "--full" in sys.argv
    config = ExperimentConfig(
        scale=0.0625,
        seed=42,
        migration_limit_bytes=8 * 1024 * 1024,
        duration_caps={"hemem": 12.0, "memtis": 20.0, "tpp": 45.0},
    )
    intensities = (0, 1, 2, 3) if full else (0, 3)
    print("Running the contention sweep "
          f"(intensities {intensities}, scale {config.scale}) ...\n")
    result = fig5.run(config, intensities=intensities)
    print(fig5.format_rows(result))
    print()
    for base in result.base_systems:
        worst = max(result.intensities,
                    key=lambda i: result.colloid_gain(base, i))
        print(f"{base}: largest Colloid gain {result.colloid_gain(base, worst):.2f}x "
              f"at {worst}x contention; gap to best-case with Colloid "
              f"{result.gap_to_best(f'{base}+colloid', worst):.1%}")


if __name__ == "__main__":
    main()
